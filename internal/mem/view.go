// View: the per-core write-buffered face of Memory used by the deferred
// (multi-core) execution mode. During a cycle's produce phase every core
// reads through its own View — reads observe the frozen start-of-cycle
// memory image plus the core's *own* buffered writes in program order — and
// all writes (plain stores and atomics) are buffered. At the cycle's commit
// phase the system flushes the buffers to the shared Memory in canonical
// core order, so cross-core visibility always lands on a cycle boundary and
// the parallel produce phase never mutates shared state.
package mem

// AtomicOp identifies a buffered read-modify-write.
type AtomicOp uint8

// Buffered operation kinds. OpStore is a plain store; the others mirror the
// ISA's atomics and are executed against memory at Flush in program order.
const (
	OpStore AtomicOp = iota
	OpCas
	OpFetchAdd
	OpFetchMin
	OpFetchOr
)

type viewOp struct {
	op     AtomicOp
	addr   uint64
	size   int
	b      uint64  // store value / atomic operand
	rc     uint64  // CAS swap value
	result *uint64 // receives the atomic's fetched (old) value at Flush
}

// View wraps a Memory with a cycle-scoped write buffer. In epoch mode
// (speculative kernel, see spec.go) the buffer drains into a multi-cycle
// overlay at EndCycle instead of into Memory, and every access is recorded
// for conflict detection and commit replay.
type View struct {
	m     *Memory
	ops   []viewOp
	epoch bool
	ep    *epochState
}

// NewView returns an empty view over m.
func NewView(m *Memory) *View { return &View{m: m, ops: make([]viewOp, 0, 64)} }

// Mem returns the underlying memory.
func (v *View) Mem() *Memory { return v.m }

// Pending reports the number of buffered operations (0 at cycle boundaries).
func (v *View) Pending() int { return len(v.ops) }

// Read returns the n-byte value at addr as seen by this view: the frozen
// memory image overlaid with the view's own buffered plain stores, oldest
// first. Buffered atomics are not overlaid — their effect lands at the
// cycle boundary (Flush), which keeps the mid-cycle image identical for
// every thread of the core regardless of rename order after the atomic
// (the issuing thread is fenced for the rest of the cycle anyway).
func (v *View) Read(addr uint64, n int) uint64 {
	var val uint64
	if v.epoch {
		val = v.peekOv(addr, n)
		v.recordRead(addr, n, false)
	} else {
		val = v.m.Peek(addr, n)
	}
	for i := range v.ops {
		o := &v.ops[i]
		if o.op == OpStore {
			val = overlay(val, addr, n, o.addr, o.size, o.b)
		}
	}
	return val
}

// Write buffers an n-byte little-endian store.
func (v *View) Write(addr uint64, n int, val uint64) {
	v.ops = append(v.ops, viewOp{op: OpStore, addr: addr, size: n, b: val})
}

// Atomic buffers a read-modify-write. The fetched (old) value is written to
// *result at Flush; result may be nil when the destination is discarded.
func (v *View) Atomic(op AtomicOp, addr uint64, b, rc uint64, result *uint64) {
	v.ops = append(v.ops, viewOp{op: op, addr: addr, size: 8, b: b, rc: rc, result: result})
}

// Flush applies the buffered operations to the underlying memory in program
// order and empties the buffer. Atomics read-modify-write the *current*
// memory contents, so earlier flushes (lower core ids) are visible — the
// system flushes views in canonical core order.
func (v *View) Flush() {
	for i := range v.ops {
		o := &v.ops[i]
		switch o.op {
		case OpStore:
			v.m.Write(o.addr, o.size, o.b)
		default:
			old := v.m.Read(o.addr, 8)
			if o.result != nil {
				*o.result = old
			}
			switch o.op {
			case OpCas:
				if old == o.b {
					v.m.Write(o.addr, 8, o.rc)
				}
			case OpFetchAdd:
				v.m.Write(o.addr, 8, old+o.b)
			case OpFetchMin:
				if o.b < old {
					v.m.Write(o.addr, 8, o.b)
				}
			case OpFetchOr:
				v.m.Write(o.addr, 8, old|o.b)
			}
		}
	}
	v.ops = v.ops[:0]
}

// overlay patches the bytes of val (an n-byte value at addr) that a
// buffered store of sv (size bytes at saddr) overlaps.
func overlay(val uint64, addr uint64, n int, saddr uint64, size int, sv uint64) uint64 {
	lo, hi := addr, addr+uint64(n)
	slo, shi := saddr, saddr+uint64(size)
	if slo < lo {
		slo = lo
	}
	if shi > hi {
		shi = hi
	}
	for a := slo; a < shi; a++ {
		sb := byte(sv >> (8 * (a - saddr)))
		shift := 8 * (a - addr)
		val = val&^(uint64(0xff)<<shift) | uint64(sb)<<shift
	}
	return val
}
