// Package mem provides the simulated flat memory shared by all cores, plus a
// bump allocator that workload builders use to lay out arrays. Addresses are
// 64-bit; storage grows on demand in fixed-size chunks so sparse layouts stay
// cheap.
package mem

import (
	"encoding/binary"
	"fmt"
)

const chunkShift = 20 // 1 MiB chunks
const chunkSize = 1 << chunkShift

// Memory is byte-addressable simulated DRAM. The zero value is not usable;
// call New.
type Memory struct {
	chunks map[uint64][]byte
	brk    uint64 // allocator high-water mark
}

// New returns an empty memory whose allocator starts at a non-zero base so
// that address 0 can serve as a null pointer.
func New() *Memory {
	return &Memory{chunks: map[uint64][]byte{}, brk: allocBase}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// base address. The memory is zeroed.
func (m *Memory) Alloc(n uint64, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + n
	return base
}

// AllocWords reserves n 8-byte words, cache-line (64 B) aligned.
func (m *Memory) AllocWords(n uint64) uint64 { return m.Alloc(n*8, 64) }

// Brk returns the current allocation high-water mark (the footprint).
func (m *Memory) Brk() uint64 { return m.brk }

func (m *Memory) chunk(addr uint64) []byte {
	key := addr >> chunkShift
	c, ok := m.chunks[key]
	if !ok {
		c = make([]byte, chunkSize)
		m.chunks[key] = c
	}
	return c
}

// span returns the backing bytes for [addr, addr+n), which must not cross a
// chunk boundary after splitting by the callers below.
func (m *Memory) span(addr uint64, n int) []byte {
	off := addr & (chunkSize - 1)
	if int(off)+n > chunkSize {
		// Crossing accesses are rare (allocator aligns); handle by
		// buffering. Callers use ReadBytes/WriteBytes for this path.
		panic("mem: unaligned access crosses chunk boundary")
	}
	return m.chunk(addr)[off : int(off)+n]
}

// Peek reads an n-byte little-endian value like Read but never allocates
// backing storage: a missing chunk reads as zeros. This is the read path of
// the deferred execution mode, where many goroutines read the frozen memory
// image concurrently — Read's lazy chunk creation would mutate the chunk map
// under them. Observable contents are identical to Read (fresh chunks are
// zeroed), and SaveState drops all-zero chunks, so Peek never perturbs
// state hashes either.
func (m *Memory) Peek(addr uint64, n int) uint64 {
	if addr&(chunkSize-1)+uint64(n) > chunkSize {
		var buf [8]byte
		m.PeekBytes(addr, buf[:n])
		return leRead(buf[:n])
	}
	c, ok := m.chunks[addr>>chunkShift]
	if !ok {
		return 0
	}
	off := addr & (chunkSize - 1)
	return leRead(c[off : off+uint64(n)])
}

// PeekBytes fills p from memory starting at addr without allocating backing
// storage; missing chunks read as zeros.
func (m *Memory) PeekBytes(addr uint64, p []byte) {
	for len(p) > 0 {
		off := addr & (chunkSize - 1)
		n := chunkSize - int(off)
		if n > len(p) {
			n = len(p)
		}
		if c, ok := m.chunks[addr>>chunkShift]; ok {
			copy(p[:n], c[off:int(off)+n])
		} else {
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		addr += uint64(n)
	}
}

// Read reads an n-byte little-endian value (n in 1,2,4,8).
func (m *Memory) Read(addr uint64, n int) uint64 {
	if addr&(chunkSize-1)+uint64(n) > chunkSize {
		var buf [8]byte
		m.ReadBytes(addr, buf[:n])
		return leRead(buf[:n])
	}
	return leRead(m.span(addr, n))
}

// Write writes an n-byte little-endian value (n in 1,2,4,8).
func (m *Memory) Write(addr uint64, n int, v uint64) {
	if addr&(chunkSize-1)+uint64(n) > chunkSize {
		var buf [8]byte
		leWrite(buf[:n], v)
		m.WriteBytes(addr, buf[:n])
		return
	}
	leWrite(m.span(addr, n), v)
}

// Read64 reads an 8-byte word.
func (m *Memory) Read64(addr uint64) uint64 { return m.Read(addr, 8) }

// Write64 writes an 8-byte word.
func (m *Memory) Write64(addr uint64, v uint64) { m.Write(addr, 8, v) }

// Read32 reads a 4-byte word.
func (m *Memory) Read32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// Write32 writes a 4-byte word.
func (m *Memory) Write32(addr uint64, v uint32) { m.Write(addr, 4, uint64(v)) }

// ReadBytes fills p from memory starting at addr.
func (m *Memory) ReadBytes(addr uint64, p []byte) {
	for len(p) > 0 {
		off := addr & (chunkSize - 1)
		n := chunkSize - int(off)
		if n > len(p) {
			n = len(p)
		}
		copy(p[:n], m.chunk(addr)[off:int(off)+n])
		p = p[n:]
		addr += uint64(n)
	}
}

// WriteBytes copies p into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, p []byte) {
	for len(p) > 0 {
		off := addr & (chunkSize - 1)
		n := chunkSize - int(off)
		if n > len(p) {
			n = len(p)
		}
		copy(m.chunk(addr)[off:int(off)+n], p[:n])
		p = p[n:]
		addr += uint64(n)
	}
}

// WriteWords writes a slice of 8-byte words starting at addr.
func (m *Memory) WriteWords(addr uint64, ws []uint64) {
	for i, w := range ws {
		m.Write64(addr+uint64(i)*8, w)
	}
}

// ReadWords reads n 8-byte words starting at addr.
func (m *Memory) ReadWords(addr uint64, n int) []uint64 {
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = m.Read64(addr + uint64(i)*8)
	}
	return ws
}

// WriteWords32 writes a slice of 4-byte words starting at addr.
func (m *Memory) WriteWords32(addr uint64, ws []uint32) {
	for i, w := range ws {
		m.Write32(addr+uint64(i)*4, w)
	}
}

func leRead(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic(fmt.Sprintf("mem: bad access size %d", len(b)))
}

func leWrite(b []byte, v uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		panic(fmt.Sprintf("mem: bad access size %d", len(b)))
	}
}
