// Clocked-component face of functional memory (sim.Component). Memory is
// fully passive in the timing model: reads and writes execute at rename
// through pull-based calls, and all *timing* of memory traffic lives in the
// cache hierarchy. It therefore never needs a tick, schedules no events,
// and accumulates no per-cycle statistics — but it sits in the system's
// component registry so the kernel drives exactly one uniform list on one
// authoritative clock.
package mem

// Tick is a no-op: memory has no clocked state.
func (m *Memory) Tick(now uint64) {}

// NextEvent reports no self-scheduled work, ever (sim.NoEvent).
func (m *Memory) NextEvent(now uint64) uint64 { return ^uint64(0) }

// FastForward is a no-op: memory accumulates no per-cycle statistics.
func (m *Memory) FastForward(from, to uint64) {}
