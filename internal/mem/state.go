package mem

import "sort"

// allocBase is the allocator start address (see New). AllocBase exports it
// for workloads that sweep the allocatable range (bench.CacheWarmup).
const (
	allocBase        = 0x10000
	AllocBase uint64 = allocBase
)

// Chunk is one populated 1 MiB region, keyed by addr>>chunkShift. Data is
// trimmed of trailing zero bytes so the canonical form is independent of
// which addresses have merely been *read* (reads allocate zero chunks).
type Chunk struct {
	Key  uint64
	Data []byte
}

// State is the serializable contents of simulated DRAM. Chunks are sorted
// by key and all-zero chunks are dropped, so two memories with identical
// observable contents always produce identical State values regardless of
// access history.
type State struct {
	Brk    uint64
	Chunks []Chunk
}

// SaveState captures memory contents in canonical form.
func (m *Memory) SaveState() State {
	st := State{Brk: m.brk}
	keys := make([]uint64, 0, len(m.chunks))
	for k := range m.chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		c := m.chunks[k]
		end := len(c)
		for end > 0 && c[end-1] == 0 {
			end--
		}
		if end == 0 {
			continue // all-zero chunk: indistinguishable from unallocated
		}
		data := make([]byte, end)
		copy(data, c[:end])
		st.Chunks = append(st.Chunks, Chunk{Key: k, Data: data})
	}
	return st
}

// RestoreState replaces memory contents with st.
func (m *Memory) RestoreState(st State) {
	m.brk = st.Brk
	m.chunks = make(map[uint64][]byte, len(st.Chunks))
	for _, c := range st.Chunks {
		buf := make([]byte, chunkSize)
		copy(buf, c.Data)
		m.chunks[c.Key] = buf
	}
}

// ResetAllocator rewinds the bump allocator to its initial base without
// touching contents. Fork-after-warmup uses this: the warmed snapshot's
// data stays cached (timing state) while the variant's builder re-runs its
// layout from the same base, writing the same addresses it would have on a
// cold system.
func (m *Memory) ResetAllocator() { m.brk = allocBase }
