package mem

import "testing"

// sets builds an AccessSets literal from (word, enc) pairs.
func sets(reads, writes map[uint64]uint32) *AccessSets {
	if reads == nil {
		reads = map[uint64]uint32{}
	}
	if writes == nil {
		writes = map[uint64]uint32{}
	}
	return &AccessSets{Reads: reads, Writes: writes}
}

// TestFirstConflictTrueConflict: a plain read that lands after a remote
// write to the same word diverges at the first cycle that could observe
// the write (off_w+1); an atomic fetch also observes same-cycle writes.
func TestFirstConflictTrueConflict(t *testing.T) {
	// Shard 0 writes word 0x100 at offset 3; shard 1 plainly reads it at
	// offset 5. Earliest stale read cycle is 4 (= 3+1).
	a := sets(nil, map[uint64]uint32{0x100: 3 * 2})
	b := sets(map[uint64]uint32{0x100: 5 * 2}, nil)
	d, ok := FirstConflict([]*AccessSets{a, b})
	if !ok || d != 4 {
		t.Fatalf("plain read-after-write: got (%d,%v), want (4,true)", d, ok)
	}

	// Same shapes but the reader is an atomic fetch at the same offset as
	// the write: atomics observe same-cycle remote commits, so the
	// divergence is the write offset itself.
	b = sets(map[uint64]uint32{0x100: 3*2 + 1}, nil)
	d, ok = FirstConflict([]*AccessSets{a, b})
	if !ok || d != 3 {
		t.Fatalf("same-cycle atomic fetch: got (%d,%v), want (3,true)", d, ok)
	}

	// A plain read at exactly the write offset is NOT a conflict: per-cycle
	// commits only become visible on the next cycle boundary.
	b = sets(map[uint64]uint32{0x100: 3 * 2}, nil)
	if d, ok := FirstConflict([]*AccessSets{a, b}); ok {
		t.Fatalf("same-cycle plain read flagged as conflict at %d", d)
	}
}

// TestFirstConflictFalseSharing: accesses to different words of the same
// cache line never conflict — the detector is word-granular.
func TestFirstConflictFalseSharing(t *testing.T) {
	a := sets(nil, map[uint64]uint32{0x100: 1 * 2}) // writes word 0 of the line
	b := sets(map[uint64]uint32{0x108: 9 * 2}, nil) // reads word 1 of the same line
	if d, ok := FirstConflict([]*AccessSets{a, b}); ok {
		t.Fatalf("false sharing flagged as conflict at %d", d)
	}
}

// TestFirstConflictReadRead: overlapping reads (and write-write overlap
// with no cross-shard read) are not conflicts; the commit replay orders
// writes canonically.
func TestFirstConflictReadRead(t *testing.T) {
	a := sets(map[uint64]uint32{0x200: 2 * 2}, nil)
	b := sets(map[uint64]uint32{0x200: 7 * 2}, nil)
	if d, ok := FirstConflict([]*AccessSets{a, b}); ok {
		t.Fatalf("read-read flagged as conflict at %d", d)
	}
	// Write-write only.
	a = sets(nil, map[uint64]uint32{0x200: 2 * 2})
	b = sets(nil, map[uint64]uint32{0x200: 7 * 2})
	if d, ok := FirstConflict([]*AccessSets{a, b}); ok {
		t.Fatalf("write-write flagged as conflict at %d", d)
	}
	// A shard never conflicts with itself: own writes are visible through
	// the epoch overlay.
	self := sets(map[uint64]uint32{0x300: 5 * 2}, map[uint64]uint32{0x300: 1 * 2})
	if d, ok := FirstConflict([]*AccessSets{self}); ok {
		t.Fatalf("self read-own-write flagged as conflict at %d", d)
	}
}

// TestFirstConflictEarliest: with several conflicting words the detector
// must return the minimum divergence offset across all pairs.
func TestFirstConflictEarliest(t *testing.T) {
	a := sets(
		map[uint64]uint32{0x400: 9 * 2},
		map[uint64]uint32{0x100: 6 * 2, 0x108: 2 * 2},
	)
	b := sets(
		map[uint64]uint32{0x100: 8 * 2, 0x108: 7 * 2},
		map[uint64]uint32{0x400: 4 * 2},
	)
	// Candidates: a writes 0x100@6, b reads @8 -> d=7; a writes 0x108@2,
	// b reads @7 -> d=3; b writes 0x400@4, a reads @9 -> d=5. Min is 3.
	d, ok := FirstConflict([]*AccessSets{a, b})
	if !ok || d != 3 {
		t.Fatalf("got (%d,%v), want (3,true)", d, ok)
	}
}

// TestEpochSetReuse: BeginEpoch must fully clear the previous epoch's
// overlay, sets and log — a stale entry would manufacture conflicts (or
// mask reads) in the next epoch.
func TestEpochSetReuse(t *testing.T) {
	m := New()
	addr := m.AllocWords(4)
	m.Write64(addr, 11)
	v := NewView(m)

	v.BeginEpoch()
	v.EpochCycle(1)
	v.Write(addr, 8, 42)
	var got uint64
	v.Atomic(OpFetchAdd, addr+8, 5, 0, &got)
	v.EndCycle()
	v.EpochCycle(2)
	if r := v.Read(addr, 8); r != 42 {
		t.Fatalf("read-own-write through overlay: got %d, want 42", r)
	}
	v.EndCycle()
	if len(v.EpochLog()) != 2 {
		t.Fatalf("epoch log has %d ops, want 2", len(v.EpochLog()))
	}
	if len(v.EpochSets().Writes) != 2 || len(v.EpochSets().Reads) != 2 {
		t.Fatalf("sets: %d writes, %d reads; want 2, 2",
			len(v.EpochSets().Writes), len(v.EpochSets().Reads))
	}
	v.EndEpoch()
	if m.Read64(addr) != 11 {
		t.Fatalf("aborted epoch leaked into memory: %d", m.Read64(addr))
	}

	// Second epoch on the same view: everything starts empty, and the
	// overlay no longer holds the aborted write.
	v.BeginEpoch()
	if len(v.EpochLog()) != 0 || len(v.EpochSets().Reads) != 0 || len(v.EpochSets().Writes) != 0 {
		t.Fatal("BeginEpoch did not clear previous epoch state")
	}
	v.EpochCycle(1)
	if r := v.Read(addr, 8); r != 11 {
		t.Fatalf("stale overlay survived BeginEpoch: got %d, want 11", r)
	}
	v.EndCycle()
	v.EndEpoch()
}

// TestEpochApplierRollback: a replay that trips an atomic old-value
// mismatch must leave memory untouched after Rollback, and a clean replay
// must land exactly the logged effects.
func TestEpochApplierRollback(t *testing.T) {
	m := New()
	addr := m.AllocWords(2)
	m.Write64(addr, 100)
	m.Write64(addr+8, 200)
	ap := NewEpochApplier(m)

	// Clean replay: store + fetch-add with the correct predicted old value.
	ap.Begin()
	ops := []EpochOp{
		{Off: 1, Op: OpStore, Size: 8, Addr: addr, B: 7},
		{Off: 2, Op: OpFetchAdd, Addr: addr + 8, B: 3, Old: 200},
	}
	for i := range ops {
		if !ap.Apply(&ops[i]) {
			t.Fatalf("clean replay rejected op %d", i)
		}
	}
	if m.Read64(addr) != 7 || m.Read64(addr+8) != 203 {
		t.Fatalf("clean replay: got %d,%d want 7,203", m.Read64(addr), m.Read64(addr+8))
	}

	// Failing replay: the store lands, then the atomic's prediction (stale
	// old value) misses; rollback must restore both words.
	ap.Begin()
	bad := []EpochOp{
		{Off: 1, Op: OpStore, Size: 8, Addr: addr, B: 99},
		{Off: 1, Op: OpFetchAdd, Addr: addr + 8, B: 1, Old: 200}, // true old is 203
	}
	if !ap.Apply(&bad[0]) {
		t.Fatal("store rejected")
	}
	if ap.Apply(&bad[1]) {
		t.Fatal("stale atomic prediction accepted")
	}
	ap.Rollback()
	if m.Read64(addr) != 7 || m.Read64(addr+8) != 203 {
		t.Fatalf("rollback: got %d,%d want 7,203", m.Read64(addr), m.Read64(addr+8))
	}
}
