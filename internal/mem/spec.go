// Epoch-mode views for speculative multi-cycle execution. In the
// speculative kernel a core runs an entire epoch of cycles against the
// frozen shared Memory image: its View accumulates writes in a word-granular
// overlay that persists across the epoch's cycles (own writes stay visible
// to later own cycles, exactly as the per-cycle flush would have made them),
// while every operation is also logged with its cycle offset so the driver
// can later replay the epoch into the real Memory in canonical
// (cycle, core, program) order. Word-granular read/write sets with cycle
// encodings let the driver detect cross-shard conflicts — including the
// same-line/different-word false-sharing case, which is *not* a conflict —
// and compute a conservative divergence cycle for rollback.
package mem

// EpochOp is one logged view operation, tagged with its 1-based cycle
// offset within the epoch. Old holds the predicted fetched value for
// atomics (filled in at EndCycle); the commit replay re-derives the true
// old value from real memory and aborts the epoch on mismatch.
type EpochOp struct {
	Off  uint32
	Op   AtomicOp
	Size int32
	Addr uint64
	B    uint64
	RC   uint64
	Old  uint64
}

// AccessSets is a shard's epoch memory footprint at 8-byte word
// granularity. Encodings fold the cycle offset and access kind into one
// comparison: Reads[w] = 2*off (plain) or 2*off+1 (atomic fetch, which
// observes same-cycle commits of lower-numbered cores), keeping the
// maximum; Writes[w] = 2*off of the first write.
type AccessSets struct {
	Reads  map[uint64]uint32
	Writes map[uint64]uint32
}

// epochState is the multi-cycle extension of a View, active only while the
// speculative kernel runs an epoch. All maps and slices are reused across
// epochs (clear-and-reuse) to stay inside the steady-state alloc budget.
type epochState struct {
	off     uint32
	overlay map[uint64]uint64 // word addr -> committed overlay value
	sets    AccessSets
	log     []EpochOp
}

// BeginEpoch switches the view into epoch mode with empty overlay, sets,
// and log. The view must have no pending per-cycle ops.
func (v *View) BeginEpoch() {
	if v.ep == nil {
		v.ep = &epochState{
			overlay: make(map[uint64]uint64, 256),
			sets: AccessSets{
				Reads:  make(map[uint64]uint32, 256),
				Writes: make(map[uint64]uint32, 256),
			},
			log: make([]EpochOp, 0, 256),
		}
	}
	ep := v.ep
	ep.off = 0
	clear(ep.overlay)
	clear(ep.sets.Reads)
	clear(ep.sets.Writes)
	ep.log = ep.log[:0]
	v.epoch = true
}

// EpochCycle sets the current 1-based cycle offset; reads recorded until
// the next call are tagged with it.
func (v *View) EpochCycle(off uint32) { v.ep.off = off }

// EndEpoch leaves epoch mode (after the driver committed or aborted the
// epoch). Buffers are kept for reuse.
func (v *View) EndEpoch() {
	v.epoch = false
	v.ops = v.ops[:0]
}

// EpochSets returns the shard's accumulated access sets.
func (v *View) EpochSets() *AccessSets { return &v.ep.sets }

// EpochLog returns the shard's logged operations in program order.
func (v *View) EpochLog() []EpochOp { return v.ep.log }

// peekOv reads n bytes at addr from the frozen memory image patched with
// the epoch overlay (the shard's own committed-cycle writes).
func (v *View) peekOv(addr uint64, n int) uint64 {
	val := v.m.Peek(addr, n)
	for w := addr &^ 7; w < addr+uint64(n); w += 8 {
		if ov, ok := v.ep.overlay[w]; ok {
			val = overlay(val, addr, n, w, 8, ov)
		}
	}
	return val
}

// ovWrite patches n bytes at addr into the epoch overlay.
func (v *View) ovWrite(addr uint64, n int, val uint64) {
	for w := addr &^ 7; w < addr+uint64(n); w += 8 {
		cur, ok := v.ep.overlay[w]
		if !ok {
			cur = v.m.Peek(w, 8)
		}
		v.ep.overlay[w] = overlay(cur, w, 8, addr, n, val)
	}
}

// recordRead folds a read of [addr, addr+n) at the current offset into the
// read set. Atomic fetches encode off*2+1: they observe same-cycle commits
// of lower-numbered cores, so they conflict with same-cycle remote writes.
func (v *View) recordRead(addr uint64, n int, atomic bool) {
	enc := v.ep.off * 2
	if atomic {
		enc++
	}
	for w := addr &^ 7; w < addr+uint64(n); w += 8 {
		if e, ok := v.ep.sets.Reads[w]; !ok || enc > e {
			v.ep.sets.Reads[w] = enc
		}
	}
}

// recordWrite folds a write of [addr, addr+n) into the write set, keeping
// the first (lowest) cycle offset per word.
func (v *View) recordWrite(addr uint64, n int) {
	enc := v.ep.off * 2
	for w := addr &^ 7; w < addr+uint64(n); w += 8 {
		if _, ok := v.ep.sets.Writes[w]; !ok {
			v.ep.sets.Writes[w] = enc
		}
	}
}

// EndCycle applies the current cycle's buffered ops to the epoch overlay in
// program order — the epoch-mode analogue of Flush. Atomics read-modify-
// write the overlay image, record their predicted old value in the log, and
// deliver it to *result now (semantically the cycle boundary, exactly when
// the per-cycle flush would have). Caller must have set EpochCycle(off).
func (v *View) EndCycle() {
	off := v.ep.off
	for i := range v.ops {
		o := &v.ops[i]
		lg := EpochOp{Off: off, Op: o.op, Size: int32(o.size), Addr: o.addr, B: o.b, RC: o.rc}
		if o.op == OpStore {
			v.ovWrite(o.addr, o.size, o.b)
			v.recordWrite(o.addr, o.size)
		} else {
			old := v.peekOv(o.addr, 8)
			lg.Old = old
			if o.result != nil {
				*o.result = old
			}
			v.recordRead(o.addr, 8, true)
			v.recordWrite(o.addr, 8)
			switch o.op {
			case OpCas:
				if old == o.b {
					v.ovWrite(o.addr, 8, o.rc)
				}
			case OpFetchAdd:
				v.ovWrite(o.addr, 8, old+o.b)
			case OpFetchMin:
				if o.b < old {
					v.ovWrite(o.addr, 8, o.b)
				}
			case OpFetchOr:
				v.ovWrite(o.addr, 8, old|o.b)
			}
		}
		v.ep.log = append(v.ep.log, lg)
	}
	v.ops = v.ops[:0]
}

// FirstConflict scans the shards' access sets pairwise and returns the
// conservative divergence offset: the earliest cycle whose execution may
// differ from the barrier kernel because one shard's read could have
// observed another shard's buffered write. A plain read at off_r observes a
// remote write at off_w only when off_r > off_w (cross-core visibility
// lands on cycle boundaries), so the earliest possibly-stale read is
// off_w+1; an atomic fetch additionally observes same-cycle commits, so a
// same-cycle remote write diverges at off_w itself. Write-write overlap
// alone is not a conflict — the commit replay applies ops in canonical
// order. Returns (0, false) when the epoch is conflict-free.
func FirstConflict(shards []*AccessSets) (uint32, bool) {
	best := ^uint32(0)
	for j, sj := range shards {
		if len(sj.Writes) == 0 {
			continue
		}
		for i, si := range shards {
			if i == j || len(si.Reads) == 0 {
				continue
			}
			for w, we := range sj.Writes {
				re, ok := si.Reads[w]
				if !ok || re <= we {
					continue
				}
				fw := we / 2
				d := fw + 1
				if re&1 == 1 && re/2 == fw {
					d = fw
				}
				if d < best {
					best = d
				}
			}
		}
	}
	if best == ^uint32(0) {
		return 0, false
	}
	return best, true
}

// EpochApplier replays logged epoch ops into the real Memory under a
// word-granular pre-image journal, so a mid-replay abort (an atomic whose
// true old value differs from the shard's prediction) can be rolled back
// exactly. Buffers are reused across epochs.
type EpochApplier struct {
	m   *Memory
	old map[uint64]uint64
}

// NewEpochApplier returns an applier over m.
func NewEpochApplier(m *Memory) *EpochApplier {
	return &EpochApplier{m: m, old: make(map[uint64]uint64, 256)}
}

// Begin starts a fresh journaled replay.
func (ap *EpochApplier) Begin() { clear(ap.old) }

// save journals pre-images for the words covering [addr, addr+n).
func (ap *EpochApplier) save(addr uint64, n int) {
	for w := addr &^ 7; w < addr+uint64(n); w += 8 {
		if _, ok := ap.old[w]; !ok {
			ap.old[w] = ap.m.Peek(w, 8)
		}
	}
}

// Apply replays one logged op. For atomics the true old value is compared
// against the shard's prediction; on mismatch nothing is applied and Apply
// reports false — the caller must Rollback and abort the epoch. The
// shard-side *result pointer is NOT rewritten: the predicted value was
// delivered at the semantically correct cycle and verified equal here.
func (ap *EpochApplier) Apply(op *EpochOp) bool {
	if op.Op == OpStore {
		ap.save(op.Addr, int(op.Size))
		ap.m.Write(op.Addr, int(op.Size), op.B)
		return true
	}
	old := ap.m.Read(op.Addr, 8)
	if old != op.Old {
		return false
	}
	ap.save(op.Addr, 8)
	switch op.Op {
	case OpCas:
		if old == op.B {
			ap.m.Write(op.Addr, 8, op.RC)
		}
	case OpFetchAdd:
		ap.m.Write(op.Addr, 8, old+op.B)
	case OpFetchMin:
		if op.B < old {
			ap.m.Write(op.Addr, 8, op.B)
		}
	case OpFetchOr:
		ap.m.Write(op.Addr, 8, old|op.B)
	}
	return true
}

// Rollback restores every journaled word, undoing the replay.
func (ap *EpochApplier) Rollback() {
	for w, val := range ap.old {
		ap.m.Write(w, 8, val)
	}
	clear(ap.old)
}
