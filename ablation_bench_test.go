package pipette

import (
	"testing"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/graph"
	"pipette/internal/sim"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=Ablation -v
//
// Each reports cycles for the configurations under study via b.Logf and
// b.ReportMetric, so the effect of each mechanism is visible directly.

func ablGraph() *graph.Graph { return graph.Road(90, 90, 7) }

func ablRun(b *testing.B, tweak func(*sim.Config), builder bench.Builder, cores int) sim.Result {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(8)
	cfg.WatchdogCycles = 5_000_000
	if tweak != nil {
		tweak(&cfg)
	}
	s := sim.New(cfg)
	r, err := bench.Run(s, builder)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// Committed-only vs speculative dequeue (Sec. IV-A: the paper measured
// about 1% from the aggressive variant).
func BenchmarkAblationSpeculativeDequeue(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		committed := ablRun(b, nil, bench.BFSPipette(g, 0, 4, true), 1)
		spec := ablRun(b, func(c *sim.Config) { c.Core.SpeculativeDequeue = true },
			bench.BFSPipette(g, 0, 4, true), 1)
		b.Logf("committed-only=%d cycles, speculative=%d cycles (%.2f%% faster)",
			committed.Cycles, spec.Cycles,
			100*(float64(committed.Cycles)-float64(spec.Cycles))/float64(committed.Cycles))
		b.ReportMetric(float64(committed.Cycles)/float64(spec.Cycles), "spec-speedup")
	}
}

// SMT thread-priority policies (the paper uses ICOUNT and defers
// producer-prioritization to future work).
func BenchmarkAblationPriorityPolicy(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		names := []string{"icount", "producers", "round-robin"}
		for p, name := range names {
			pol := core.PriorityPolicy(p)
			r := ablRun(b, func(c *sim.Config) { c.Core.Priority = pol },
				bench.BFSPipette(g, 0, 4, true), 1)
			b.Logf("%-12s %d cycles (IPC %.2f)", name, r.Cycles, r.IPC())
		}
	}
}

// Queue depth: decoupling depth vs PRF pressure (the Fig. 14 mechanism,
// isolated from PRF size).
func BenchmarkAblationQueueDepth(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		for _, qs := range []float64{0.25, 0.5, 1.0, 1.4} {
			r := ablRun(b, nil, bench.BFSPipetteScaled(g, 0, qs), 1)
			b.Logf("qscale=%.2f  %d cycles", qs, r.Cycles)
		}
	}
}

// Control-value trap cost: the exception-style redirect penalty
// (Sec. IV-A "we reuse the exception logic").
func BenchmarkAblationTrapPenalty(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		for _, pen := range []uint64{4, 16, 64} {
			r := ablRun(b, func(c *sim.Config) { c.Core.TrapPenalty = pen },
				bench.BFSPipette(g, 0, 4, true), 1)
			b.Logf("trap=%d cycles/redirect: %d total cycles", pen, r.Cycles)
		}
	}
}

// NoC latency sensitivity of cross-core decoupling (Sec. IV-C connectors).
func BenchmarkAblationNoCLatency(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		for _, lat := range []uint64{4, 12, 48} {
			r := ablRun(b, func(c *sim.Config) { c.NoCLatency = lat },
				bench.BFSStreaming(g, 0), 4)
			b.Logf("noc=%d: %d cycles", lat, r.Cycles)
		}
	}
}

// Stream prefetcher: the paper assumes sequential fringe accesses are
// "trivially handled by a stream prefetcher".
func BenchmarkAblationPrefetcher(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		with := ablRun(b, nil, bench.BFSSerial(g, 0), 1)
		without := ablRun(b, func(c *sim.Config) { c.Cache.StreamPrefetch = false },
			bench.BFSSerial(g, 0), 1)
		b.Logf("prefetch on=%d cycles, off=%d cycles", with.Cycles, without.Cycles)
		b.ReportMetric(float64(without.Cycles)/float64(with.Cycles), "pf-speedup")
	}
}

// RA issue rate: loads started per cycle per reference accelerator.
func BenchmarkAblationRAIssueRate(b *testing.B) {
	g := ablGraph()
	for i := 0; i < b.N; i++ {
		// BFSPipette uses IssuePerCycle=2 internally; compare against the
		// no-RA pipeline to bound the RA contribution.
		ra := ablRun(b, nil, bench.BFSPipette(g, 0, 4, true), 1)
		noRA := ablRun(b, nil, bench.BFSPipette(g, 0, 4, false), 1)
		b.Logf("with RAs=%d cycles, without=%d cycles", ra.Cycles, noRA.Cycles)
		b.ReportMetric(float64(noRA.Cycles)/float64(ra.Cycles), "ra-speedup")
	}
}
