// Command pipette-diverge pinpoints where two configurations of the
// simulated machine first diverge. It restores one snapshot into two
// systems whose configurations may differ in timing-only knobs (loose
// restore; see docs/CHECKPOINT.md), runs them in lockstep, and binary
// -searches for the first cycle at which their state hashes differ. It then
// prints structured field-by-field diffs of the two machines at that cycle:
// the debug-dump view and the complete machine state (which also covers
// micro-architectural fields the debug dump omits).
//
// Usage:
//
//	pipette-sim -app cc -variant pipette -checkpoint-every 50000 -checkpoint-out cc.snap
//	pipette-diverge -snapshot cc.snap -b Cache.DRAMLat=200
//	pipette-diverge -snapshot cc.snap -a NoCLatency=8 -b NoCLatency=16 -granularity 4096
//	pipette-diverge -snapshot cc.snap -b-no-predecode
//
// Override specs are comma-separated dotted field paths into sim.Config
// (e.g. "Cache.DRAMLat=200,NoCLatency=16"). With no overrides the two
// sides are identical and the tool verifies they never diverge.
// -a-no-predecode / -b-no-predecode put one side on the raw-Inst rename
// path (the -no-predecode escape hatch); since the decoded frontend is
// bit-identical by construction, such a run must also never diverge —
// and if it ever does, this tool pinpoints the offending cycle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"

	"pipette/internal/bench"
	"pipette/internal/checkpoint"
	"pipette/internal/sim"
)

func main() {
	snapPath := flag.String("snapshot", "", "pipette.snapshot/v1 file to fork both sides from (required)")
	overA := flag.String("a", "", "side A config overrides: comma-separated Field.Path=value")
	overB := flag.String("b", "", "side B config overrides: comma-separated Field.Path=value")
	noPdA := flag.Bool("a-no-predecode", false, "side A renames from raw instructions (predecode escape hatch)")
	noPdB := flag.Bool("b-no-predecode", false, "side B renames from raw instructions (predecode escape hatch)")
	granularity := flag.Uint64("granularity", 1024, "lockstep scan interval in cycles before bisecting")
	maxCycles := flag.Uint64("max-cycles", 0, "stop scanning this many cycles past the snapshot (0 = run to completion)")
	diffLimit := flag.Int("diff-limit", 64, "maximum differing fields to print")
	flag.Parse()
	if *snapPath == "" {
		fmt.Fprintln(os.Stderr, "pipette-diverge: -snapshot is required")
		os.Exit(2)
	}
	if *granularity == 0 {
		*granularity = 1
	}

	meta, err := readMeta(*snapPath)
	if err != nil {
		fatal(err)
	}
	wl := meta.Workload
	if wl.App == "" || wl.Variant == "" {
		fatal(fmt.Errorf("%s records no workload metadata; re-save it with pipette-sim -checkpoint-every", *snapPath))
	}
	var baseCfg sim.Config
	if err := json.Unmarshal(meta.Config, &baseCfg); err != nil {
		fatal(fmt.Errorf("decoding snapshot config: %w", err))
	}

	sideA, err := newSide(*snapPath, baseCfg, wl, *overA, !*noPdA)
	if err != nil {
		fatal(fmt.Errorf("side A: %w", err))
	}
	sideB, err := newSide(*snapPath, baseCfg, wl, *overB, !*noPdB)
	if err != nil {
		fatal(fmt.Errorf("side B: %w", err))
	}
	start := sideA.Now()
	fmt.Printf("forked %s/%s/%s at cycle %d\n", wl.App, wl.Variant, wl.Input, start)
	fmt.Printf("  A: %s\n  B: %s\n", describe(*overA, *noPdA), describe(*overB, *noPdB))

	// Phase 1 — lockstep scan at -granularity until the hashes part ways.
	lo := start // highest cycle where the sides are known hash-equal
	for {
		target := lo + *granularity
		if err := stepBoth(sideA, sideB, target); err != nil {
			fatal(err)
		}
		ha, hb := mustHash(sideA), mustHash(sideB)
		if ha != hb {
			break
		}
		if sideA.Done() && sideB.Done() {
			fmt.Printf("no divergence: both sides completed at cycle %d with identical state (hash %s)\n",
				sideA.Now(), ha)
			return
		}
		if *maxCycles > 0 && target-start >= *maxCycles {
			fmt.Printf("no divergence within %d cycles (scanned to cycle %d, hash %s)\n",
				*maxCycles, target, ha)
			return
		}
		lo = target
	}

	// Phase 2 — bisect: fresh fork, rerun to lo, then advance one cycle at
	// a time until the hashes first differ. Simulation is deterministic, so
	// the rerun reproduces the scan exactly.
	sideA, err = newSide(*snapPath, baseCfg, wl, *overA, !*noPdA)
	if err != nil {
		fatal(err)
	}
	sideB, err = newSide(*snapPath, baseCfg, wl, *overB, !*noPdB)
	if err != nil {
		fatal(err)
	}
	if err := stepBoth(sideA, sideB, lo); err != nil {
		fatal(err)
	}
	if ha, hb := mustHash(sideA), mustHash(sideB); ha != hb {
		fatal(fmt.Errorf("non-deterministic rerun: sides differ at cycle %d on the second pass", lo))
	}
	for {
		next := maxU(sideA.Now(), sideB.Now()) + 1
		if err := stepBoth(sideA, sideB, next); err != nil {
			fatal(err)
		}
		ha, hb := mustHash(sideA), mustHash(sideB)
		if ha != hb {
			fmt.Printf("first divergence at cycle %d (%d cycles after the fork)\n", next, next-start)
			fmt.Printf("  state hash A: %s\n  state hash B: %s\n", ha, hb)
			printDiff(sideA, sideB, *diffLimit)
			return
		}
		if sideA.Done() && sideB.Done() {
			fatal(fmt.Errorf("divergence vanished on rerun at cycle %d — simulation is not deterministic", next))
		}
	}
}

// newSide builds one side: config overrides applied, workload rebuilt,
// snapshot loosely restored.
func newSide(snapPath string, base sim.Config, wl checkpoint.Workload, overrides string, predecode bool) (*sim.System, error) {
	cfg := base
	if err := applyOverrides(&cfg, overrides); err != nil {
		return nil, err
	}
	prdIters := wl.PRDIters
	if prdIters <= 0 {
		prdIters = 4
	}
	seed := wl.Seed
	if seed == 0 {
		seed = 1
	}
	b, _, err := bench.Lookup(wl.App, wl.Variant, wl.Input, prdIters, seed)
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg)
	s.SetPredecode(predecode)
	b(s)
	f, err := os.Open(snapPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := s.RestoreLoose(f); err != nil {
		return nil, err
	}
	return s, nil
}

// stepBoth advances both sides to the same absolute cycle. RunUntil
// treats the bound as "not an error", so watchdog/MaxCycles failures are
// the only errors surfaced here.
func stepBoth(a, b *sim.System, target uint64) error {
	if _, err := a.RunUntil(target); err != nil {
		return fmt.Errorf("side A: %w", err)
	}
	if _, err := b.RunUntil(target); err != nil {
		return fmt.Errorf("side B: %w", err)
	}
	return nil
}

func mustHash(s *sim.System) string {
	h, err := s.StateHash()
	if err != nil {
		fatal(err)
	}
	return h
}

// printDiff renders two structured diffs: the debug-dump view (the
// fields a human watches — PCs, stalls, queue occupancies) and the full
// machine-state view, which sees everything StateHash hashes. Early
// divergences often live only in micro-architectural state (an in-flight
// µop's completion timestamp, a cache way's LRU order) that the debug
// dump deliberately omits, so both views are printed.
func printDiff(a, b *sim.System, limit int) {
	da, db := a.DebugState(), b.DebugState()
	da.Telemetry, db.Telemetry = "", "" // formatted text, not machine state
	dbg, err := checkpoint.DiffJSON(da, db)
	if err != nil {
		fatal(err)
	}
	printLimited("debug-dump diff", dbg, limit)
	full, err := sim.DiffStates(a, b)
	if err != nil {
		fatal(err)
	}
	printLimited("machine-state diff", full, limit)
}

func printLimited(title string, lines []string, limit int) {
	fmt.Printf("%s (A vs B, %d fields):\n", title, len(lines))
	if len(lines) == 0 {
		fmt.Println("  (none)")
		return
	}
	for i, l := range lines {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(lines)-limit)
			break
		}
		fmt.Printf("  %s\n", l)
	}
}

// applyOverrides sets comma-separated Field.Path=value entries on cfg via
// reflection. Integer, unsigned and bool fields are supported.
func applyOverrides(cfg *sim.Config, spec string) error {
	if spec == "" {
		return nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			return fmt.Errorf("bad override %q: want Field.Path=value", kv)
		}
		pathStr, valStr := kv[:eq], kv[eq+1:]
		v := reflect.ValueOf(cfg).Elem()
		for _, field := range strings.Split(pathStr, ".") {
			if v.Kind() != reflect.Struct {
				return fmt.Errorf("override %q: %q is not a struct field path", kv, pathStr)
			}
			v = v.FieldByName(field)
			if !v.IsValid() {
				return fmt.Errorf("override %q: no field %q in sim.Config", kv, field)
			}
		}
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			n, err := strconv.ParseInt(valStr, 0, 64)
			if err != nil {
				return fmt.Errorf("override %q: %w", kv, err)
			}
			v.SetInt(n)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			n, err := strconv.ParseUint(valStr, 0, 64)
			if err != nil {
				return fmt.Errorf("override %q: %w", kv, err)
			}
			v.SetUint(n)
		case reflect.Bool:
			b, err := strconv.ParseBool(valStr)
			if err != nil {
				return fmt.Errorf("override %q: %w", kv, err)
			}
			v.SetBool(b)
		default:
			return fmt.Errorf("override %q: unsupported field kind %s", kv, v.Kind())
		}
	}
	return nil
}

func describe(spec string, noPredecode bool) string {
	if spec == "" && !noPredecode {
		return "(base config)"
	}
	if noPredecode {
		if spec == "" {
			return "(base config, no-predecode)"
		}
		return spec + " (no-predecode)"
	}
	return spec
}

func readMeta(path string) (checkpoint.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return checkpoint.Meta{}, err
	}
	defer f.Close()
	meta, _, err := checkpoint.Read(f)
	return meta, err
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipette-diverge:", err)
	os.Exit(1)
}
