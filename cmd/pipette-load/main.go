// Command pipette-load drives a running pipette-server with a multi-
// tenant job mix and verifies the results. It enumerates the evaluation
// matrix for the requested configuration, submits -jobs jobs per tenant
// (duplicates on purpose, so the server's single-flight dedup and result
// cache both get exercised), polls every job to a terminal state, and —
// unless -verify=false — recomputes each distinct cell with a direct
// in-process harness run and demands byte-identical payloads. The exit
// status is the verdict, so CI can gate on it (scripts/ci.sh serve-smoke).
//
// Usage:
//
//	pipette-server -addr :8080 -data build/server &
//	pipette-load -addr http://localhost:8080 -tenants 3 -jobs 12 -apps silo -tiny
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pipette/internal/harness"
	"pipette/internal/server"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "pipette-server base URL")
	tenants := flag.Int("tenants", 3, "number of tenants")
	jobs := flag.Int("jobs", 12, "jobs submitted per tenant")
	tiny := flag.Bool("tiny", true, "use the tiny-scale configuration")
	apps := flag.String("apps", "silo", "AppFilter for the job configuration (\"\" = all apps)")
	seed := flag.Int64("seed", 1, "RNG seed for the job mix")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	verify := flag.Bool("verify", true, "recompute each distinct cell in-process and compare")
	flag.Parse()

	if err := run(*addr, *tenants, *jobs, *tiny, *apps, *seed, *timeout, *verify); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-load: FAIL: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, tenants, jobsPer int, tiny bool, apps string, seed int64, timeout time.Duration, verify bool) error {
	cfg := harness.Default()
	if tiny {
		cfg = harness.Tiny()
	}
	cfg.AppFilter = apps
	keys, _ := cfg.Matrix()
	if len(keys) == 0 {
		return fmt.Errorf("configuration has an empty evaluation matrix")
	}
	deadline := time.Now().Add(timeout)

	// Submit the mix: tenants in parallel, each with a seeded stream of
	// cells so the mix is reproducible and contains duplicates.
	var (
		mu        sync.Mutex
		submitted = map[string]harness.Key{} // job id -> key
		retried   atomic.Int64
		wg        sync.WaitGroup
		errc      = make(chan error, tenants)
	)
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(t)))
			tenant := fmt.Sprintf("load-%02d", t)
			for i := 0; i < jobsPer; i++ {
				key := keys[rng.Intn(len(keys))]
				id, err := submitJob(addr, tenant, server.JobSpec{
					App: key.App, Variant: key.Variant, Input: key.Input, Config: &cfg,
				}, &retried, deadline)
				if err != nil {
					errc <- fmt.Errorf("tenant %s job %d: %w", tenant, i, err)
					return
				}
				mu.Lock()
				submitted[id] = key
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return err
	}
	fmt.Printf("submitted %d jobs (%d tenants x %d, %d distinct cells, %d rate-limit retries)\n",
		len(submitted), tenants, jobsPer, len(keys), retried.Load())

	// Poll every job to a terminal state and collect its cell payload.
	cells := map[string]*harness.Cell{}
	for id := range submitted {
		j, err := pollJob(addr, id, deadline)
		if err != nil {
			return err
		}
		if j.State != server.StateDone {
			return fmt.Errorf("job %s finished as %s: %s", id, j.State, j.Error)
		}
		if j.Cell == nil {
			return fmt.Errorf("job %s done without a cell payload", id)
		}
		cells[id] = j.Cell
	}
	fmt.Printf("all %d jobs done\n", len(cells))

	if verify {
		// Ground truth: one direct in-process run per distinct cell, over a
		// private cache so nothing is shared with the server.
		truthDir, err := os.MkdirTemp("", "pipette-load-truth-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(truthDir)
		truth := map[harness.Key][]byte{}
		distinct := map[harness.Key]bool{}
		for _, k := range submitted {
			distinct[k] = true
		}
		for k := range distinct {
			cell, _, err := harness.RunCell(cfg, k, harness.SweepOptions{CacheDir: truthDir})
			if err != nil {
				return fmt.Errorf("direct run %v: %w", k, err)
			}
			canon, err := canonCell(cell)
			if err != nil {
				return err
			}
			truth[k] = canon
		}
		for id, cell := range cells {
			canon, err := canonCell(*cell)
			if err != nil {
				return err
			}
			if want := truth[submitted[id]]; !bytes.Equal(canon, want) {
				return fmt.Errorf("job %s (%v): server cell differs from direct run\n got: %s\nwant: %s",
					id, submitted[id], canon, want)
			}
		}
		fmt.Printf("verified %d cells byte-identical to direct in-process runs\n", len(distinct))
	}

	var stats server.Stats
	if err := getJSON(addr+"/healthz", &stats); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	fmt.Printf("server: status=%s computed=%d dedup_hits=%d cache_hits=%d rate_limited=%d queue_depth=%d\n",
		stats.Status, stats.Computed, stats.DedupHits, stats.CacheHits, stats.RateLimited, stats.QueueDepth)
	return nil
}

// canonCell is the comparison form: WallSeconds is the only field that
// legitimately differs between a server run and a local rerun.
func canonCell(c harness.Cell) ([]byte, error) {
	c.WallSeconds = 0
	return json.Marshal(c)
}

// submitJob POSTs one job, retrying 429s (token bucket or quota) until
// the deadline.
func submitJob(addr, tenant string, spec server.JobSpec, retried *atomic.Int64, deadline time.Time) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	for {
		req, err := http.NewRequest("POST", addr+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("X-Pipette-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var j server.Job
			if err := json.Unmarshal(data, &j); err != nil {
				return "", err
			}
			return j.ID, nil
		case http.StatusTooManyRequests:
			retried.Add(1)
			if time.Now().After(deadline) {
				return "", fmt.Errorf("still rate-limited at deadline")
			}
			time.Sleep(200 * time.Millisecond)
		default:
			return "", fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
	}
}

func pollJob(addr, id string, deadline time.Time) (*server.Job, error) {
	for {
		var j server.Job
		if err := getJSON(addr+"/v1/jobs/"+id, &j); err != nil {
			return nil, fmt.Errorf("job %s: %w", id, err)
		}
		if j.State == server.StateDone || j.State == server.StateFailed {
			return &j, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s at deadline", id, j.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
