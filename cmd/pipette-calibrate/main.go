// pipette-calibrate is the model-fidelity correlation tool: it scores the
// evaluation matrix against the committed reference table
// (build/baselines/paper_reference.json), optionally grid-searching model
// parameters to minimize the weighted correlation error, and emits a
// pipette.correlation/v1 report. See docs/VALIDATION.md.
//
// Modes:
//
//	pipette-calibrate -tiny -check                 # score vs reference, exit 1 on drift
//	pipette-calibrate -tiny -write-ref             # regenerate the reference table
//	pipette-calibrate -tiny -set dram=360 -check   # score a perturbed model (expected fail)
//	pipette-calibrate -tiny -calibrate 'dram=90,180,360' -out fit.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pipette/internal/harness"
	"pipette/internal/validate"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipette-calibrate:", err)
	os.Exit(2)
}

func main() {
	refPath := flag.String("ref", "build/baselines/paper_reference.json", "reference table to score against (and -write-ref target)")
	tiny := flag.Bool("tiny", false, "use the fast test-scale configuration (CI)")
	apps := flag.String("apps", "", "comma-separated app subset; the reference is filtered to match (\"\" = all)")
	seed := flag.Int64("seed", 0, "override the base RNG seed for synthetic inputs (0 = default)")
	jobs := flag.Int("jobs", 0, "evaluation sweep workers (0 = GOMAXPROCS)")
	sweepCache := flag.String("sweep-cache", "build/sweepcache", "on-disk sweep result cache directory (\"\" disables)")
	quiet := flag.Bool("quiet", false, "suppress live sweep/calibration progress on stderr")
	out := flag.String("out", "", "write the correlation report JSON here (\"\" = stdout)")
	check := flag.Bool("check", false, "exit 1 when the correlation report fails its tolerance bands")
	writeRef := flag.Bool("write-ref", false, "regenerate the reference table at -ref from this run (re-baselining)")
	calibrate := flag.String("calibrate", "", "grid-search spec, e.g. 'dram=90,180,360;l3=16,32,64' (params: "+strings.Join(validate.ParamNames(), ",")+")")
	set := flag.String("set", "", "model-parameter perturbations applied to the scored config, e.g. 'dram=360,l2=20'")
	label := flag.String("label", "", "free-form label recorded in the report")
	flag.Parse()

	cfg, scale := harness.Default(), "default"
	if *tiny {
		cfg, scale = harness.Tiny(), "tiny"
	}
	if *apps != "" {
		cfg.AppFilter = *apps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *set != "" {
		for _, kv := range strings.Split(*set, ",") {
			name, val, err := parseAssign(kv)
			if err != nil {
				fatal(fmt.Errorf("bad -set %q: %w", kv, err))
			}
			if err := validate.ApplyParam(&cfg, name, val); err != nil {
				fatal(err)
			}
		}
	}

	opts := harness.SweepOptions{Jobs: *jobs, CacheDir: *sweepCache}
	var progress *os.File
	if !*quiet {
		opts.Progress = os.Stderr
		progress = os.Stderr
	}

	if *writeRef {
		if *set != "" || *calibrate != "" {
			fatal(fmt.Errorf("-write-ref takes no -set/-calibrate: the reference must be the unperturbed model"))
		}
		e, err := harness.EvaluateWith(cfg, opts)
		if err != nil {
			fatal(err)
		}
		ref, err := validate.BuildReference(e, scale)
		if err != nil {
			fatal(err)
		}
		if err := writeJSONFile(*refPath, ref.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: scale=%s apps=%v fig9=%d fig13=%d rows\n",
			*refPath, ref.Scale, ref.Apps, len(ref.Fig9), len(ref.Fig13))
		return
	}

	ref, err := validate.LoadReference(*refPath)
	if err != nil {
		fatal(err)
	}
	if ref.Scale != scale {
		fatal(fmt.Errorf("reference %s is %s-scale but this run is %s-scale", *refPath, ref.Scale, scale))
	}
	if *apps != "" {
		if ref, err = ref.FilterApps(strings.Split(*apps, ",")); err != nil {
			fatal(err)
		}
	}

	var rep *validate.Report
	if *calibrate != "" {
		grid, err := parseGrid(*calibrate)
		if err != nil {
			fatal(err)
		}
		if rep, err = validate.Calibrate(cfg, opts, ref, grid, progress); err != nil {
			fatal(err)
		}
	} else {
		e, err := harness.EvaluateWith(cfg, opts)
		if err != nil {
			fatal(err)
		}
		if rep, err = validate.Score(e, ref); err != nil {
			fatal(err)
		}
	}
	rep.Label = *label

	if *out != "" {
		if err := writeJSONFile(*out, rep.WriteJSON); err != nil {
			fatal(err)
		}
	} else if err := rep.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}

	status := "PASS"
	if !rep.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(os.Stderr, "correlation %s: weighted error %.4f over %d figure checks (apps %v, %s scale)\n",
		status, rep.WeightedError, len(rep.Figures), rep.Apps, rep.Scale)
	if c := rep.Calibration; c != nil {
		fmt.Fprintf(os.Stderr, "calibration: best %v (error %.4f, baseline %.4f, %d points)\n",
			c.Best, c.BestError, c.BaselineError, c.Points)
	}
	if *check && !rep.Pass {
		os.Exit(1)
	}
}

// parseAssign splits one "name=value" pair.
func parseAssign(kv string) (string, float64, error) {
	name, vs, ok := strings.Cut(strings.TrimSpace(kv), "=")
	if !ok {
		return "", 0, fmt.Errorf("want name=value")
	}
	v, err := strconv.ParseFloat(vs, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %w", vs, err)
	}
	return strings.TrimSpace(name), v, nil
}

// parseGrid parses 'param=v1,v2,...;param2=...' into grid dimensions.
func parseGrid(spec string) ([]validate.GridSpec, error) {
	var grid []validate.GridSpec
	for _, dim := range strings.Split(spec, ";") {
		name, vs, ok := strings.Cut(strings.TrimSpace(dim), "=")
		if !ok {
			return nil, fmt.Errorf("bad -calibrate dimension %q: want param=v1,v2,...", dim)
		}
		g := validate.GridSpec{Param: strings.TrimSpace(name)}
		for _, s := range strings.Split(vs, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("bad -calibrate value %q in %q: %w", s, dim, err)
			}
			g.Values = append(g.Values, v)
		}
		grid = append(grid, g)
	}
	return grid, nil
}

// writeJSONFile writes via the given renderer, creating parent dirs.
func writeJSONFile(path string, render func(w io.Writer) error) error {
	if dir := strings.TrimSuffix(path, "/"); strings.Contains(dir, "/") {
		if err := os.MkdirAll(dir[:strings.LastIndex(dir, "/")], 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
