package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidateJobRecord drives the CLI's sniffing path against the job
// golden file: the pinned pipette.job/v1 document validates, and the same
// document with a bumped version is rejected with the precise
// unsupported-version error (not the generic unrecognized-schema one).
func TestValidateJobRecord(t *testing.T) {
	golden := filepath.Join("..", "..", "internal", "server", "testdata", "job_v1.json")
	if err := validate(golden, 0); err != nil {
		t.Fatalf("golden job record rejected: %v", err)
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["schema"] = "pipette.job/v2"
	bumped, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job_v2.json")
	if err := os.WriteFile(path, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	err = validate(path, 0)
	if err == nil || !strings.Contains(err.Error(), "unsupported job schema version") {
		t.Fatalf("v2 record: error = %v, want unsupported-version", err)
	}
}
