// Command pipette-validate checks telemetry artifacts against their
// schemas: run reports (pipette.report/v1 and /v2 — v2 adds the
// conservation-checked cpi_stacks and queue_hist cycle-accounting
// sections), run sets (pipette.runset/v1), metrics series
// (pipette.metrics/v1 JSON or the CSV sink), correlation reports
// (pipette.correlation/v1), pipette-server job records (pipette.job/v1),
// and Chrome trace-event files.
// Unknown schema versions inside a known family are rejected with an error
// naming the supported versions. CI's smoke run gates on it.
//
// Usage:
//
//	pipette-sim -app bfs -variant pipette -json > report.json
//	pipette-validate report.json
//	pipette-validate -min-trace-cats 3 trace.json metrics.csv report.json
//
// File types are sniffed: .csv files are validated as metrics CSV, JSON
// files by their schema field (or a traceEvents key for Chrome traces).
// Exits non-zero on the first invalid artifact.
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pipette/internal/server"
	"pipette/internal/telemetry"
	validatepkg "pipette/internal/validate"
)

func main() {
	minCats := flag.Int("min-trace-cats", 0, "require at least this many component types in traces")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pipette-validate [-min-trace-cats N] file...")
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		if err := validate(path, *minCats); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func validate(path string, minCats int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		return validateCSV(path, data)
	}
	// Sniff the JSON shape.
	var probe struct {
		Schema      string          `json:"schema"`
		TraceEvents json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	switch {
	case strings.HasPrefix(probe.Schema, "pipette.report/"):
		// Both report schema versions validate; anything else in the family
		// is an unknown version and gets a precise error rather than the
		// generic unrecognized-schema fallthrough.
		if probe.Schema != telemetry.ReportSchema && probe.Schema != telemetry.ReportSchemaV1 {
			return fmt.Errorf("unsupported report schema version %q (supported: %s, %s)",
				probe.Schema, telemetry.ReportSchemaV1, telemetry.ReportSchema)
		}
		r, err := telemetry.ValidateReport(bytes.NewReader(data))
		if err != nil {
			return err
		}
		extra := ""
		if n := len(r.CPIStacks); n > 0 {
			extra = fmt.Sprintf(" cpi-stacks=%d", n)
		}
		fmt.Printf("ok   %s: report (%s) %s/%s/%s cycles=%d ipc=%.3f%s\n",
			path, r.Schema, r.App, r.Variant, r.Input, r.Cycles, r.IPC, extra)
	case strings.HasPrefix(probe.Schema, "pipette.runset/"):
		if probe.Schema != telemetry.RunSetSchema {
			return fmt.Errorf("unsupported run-set schema version %q (supported: %s)",
				probe.Schema, telemetry.RunSetSchema)
		}
		rs, err := telemetry.ValidateRunSet(bytes.NewReader(data))
		if err != nil {
			return err
		}
		fmt.Printf("ok   %s: run set with %d runs\n", path, len(rs.Runs))
	case strings.HasPrefix(probe.Schema, "pipette.metrics/"):
		if probe.Schema != telemetry.MetricsSchema {
			return fmt.Errorf("unsupported metrics schema version %q (supported: %s)",
				probe.Schema, telemetry.MetricsSchema)
		}
		interval, samples, err := telemetry.ReadMetricsJSON(bytes.NewReader(data))
		if err != nil {
			return err
		}
		fmt.Printf("ok   %s: metrics, %d samples @ %d cycles\n", path, len(samples), interval)
	case strings.HasPrefix(probe.Schema, "pipette.correlation/"):
		if probe.Schema != validatepkg.Schema {
			return fmt.Errorf("unsupported correlation schema version %q (supported: %s)",
				probe.Schema, validatepkg.Schema)
		}
		rep, err := validatepkg.ValidateCorrelation(bytes.NewReader(data))
		if err != nil {
			return err
		}
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
		}
		cal := ""
		if rep.Calibration != nil {
			cal = fmt.Sprintf(" calibration=%d-point fit", rep.Calibration.Points)
		}
		fmt.Printf("ok   %s: correlation %s, %d figure checks, weighted error %.4f (apps %s, %s scale)%s\n",
			path, status, len(rep.Figures), rep.WeightedError, strings.Join(rep.Apps, ","), rep.Scale, cal)
	case strings.HasPrefix(probe.Schema, "pipette.job/"):
		// ValidateJob rejects unknown versions in the family with a precise
		// unsupported-version error, matching the other families here.
		j, err := server.ValidateJob(bytes.NewReader(data))
		if err != nil {
			return err
		}
		extra := ""
		switch {
		case j.State == server.StateFailed:
			extra = fmt.Sprintf(" error=%q", j.Error)
		case j.DedupHit:
			extra = " (dedup)"
		case j.CacheHit:
			extra = " (cached)"
		}
		fmt.Printf("ok   %s: job %s tenant=%s %s/%s/%s state=%s%s\n",
			path, j.ID, j.Tenant, j.Spec.App, j.Spec.Variant, j.Spec.Input, j.State, extra)
	case probe.TraceEvents != nil:
		n, cats, err := telemetry.ValidateChromeTrace(bytes.NewReader(data))
		if err != nil {
			return err
		}
		if len(cats) < minCats {
			return fmt.Errorf("trace covers %d component types (%s), need >= %d",
				len(cats), strings.Join(sortedKeys(cats), ","), minCats)
		}
		fmt.Printf("ok   %s: chrome trace, %d events from %d component types (%s)\n",
			path, n, len(cats), strings.Join(sortedKeys(cats), ","))
	default:
		return fmt.Errorf("unrecognized schema %q", probe.Schema)
	}
	return nil
}

// validateCSV checks the metrics CSV sink: a header starting with the
// whole-system columns, rectangular rows, and monotonically increasing
// cycle numbers.
func validateCSV(path string, data []byte) error {
	rd := csv.NewReader(bytes.NewReader(data))
	rows, err := rd.ReadAll() // enforces rectangularity
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("empty file")
	}
	header := rows[0]
	for i, want := range []string{"cycle", "committed", "ipc", "mpki"} {
		if i >= len(header) || header[i] != want {
			return fmt.Errorf("column %d = %q, want %q", i, header[i], want)
		}
	}
	hasOcc, hasStall := false, false
	for _, h := range header {
		if strings.Contains(h, "_q") && strings.HasSuffix(h, "_occ") {
			hasOcc = true
		}
		if strings.HasSuffix(h, "_stall") {
			hasStall = true
		}
	}
	if !hasOcc || !hasStall {
		return fmt.Errorf("header lacks per-queue occupancy and/or stall-reason columns")
	}
	last := int64(-1)
	for i, row := range rows[1:] {
		cyc, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return fmt.Errorf("row %d: bad cycle %q", i+1, row[0])
		}
		if cyc <= last {
			return fmt.Errorf("row %d: cycle %d not increasing (prev %d)", i+1, cyc, last)
		}
		last = cyc
	}
	fmt.Printf("ok   %s: metrics CSV, %d samples, %d columns\n", path, len(rows)-1, len(header))
	return nil
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
