// Command pipette-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pipette-bench -exp fig2          # one experiment
//	pipette-bench -exp all           # everything (writes EXPERIMENTS-style output)
//	pipette-bench -list              # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pipette/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment name (figN/tableN) or 'all'")
	list := flag.Bool("list", false, "list experiment names and exit")
	cacheScale := flag.Int("cache-scale", 0, "override cache downscale factor")
	graphScale := flag.Int("graph-scale", 0, "override graph input scale")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Names(), "\n"))
		return
	}
	cfg := harness.Default()
	if *cacheScale > 0 {
		cfg.CacheScale = *cacheScale
	}
	if *graphScale > 0 {
		cfg.GraphScale = *graphScale
	}

	names := harness.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, n := range names {
		start := time.Now()
		if err := harness.Run(n, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", n, time.Since(start).Seconds())
	}
}
