// Command pipette-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pipette-bench -exp fig2          # one experiment
//	pipette-bench -exp all           # everything (writes EXPERIMENTS-style output)
//	pipette-bench -list              # list experiment names
//	pipette-bench -jobs 8            # parallel evaluation sweep (output is byte-identical)
//	pipette-bench -sweep -shard 0/2  # run half of the evaluation matrix, no reports
//	pipette-bench -report-out runs.json   # machine-readable evaluation matrix
//	pipette-bench -exp fig9 -cpuprofile cpu.out   # profile the simulator itself
//
// The evaluation matrix runs on a bounded worker pool (-jobs, default
// GOMAXPROCS); results are keyed by cell, so figure/table output does not
// depend on the worker count. Completed cells are cached on disk under
// -sweep-cache (content-hashed by configuration; delete the directory or
// pass -sweep-cache "" to force recomputation). See docs/SWEEP.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pipette/internal/harness"
	"pipette/internal/profile"
)

func main() {
	exp := flag.String("exp", "all", "experiment name (figN/tableN) or 'all'")
	list := flag.Bool("list", false, "list experiment names and exit")
	cacheScale := flag.Int("cache-scale", 0, "override cache downscale factor")
	graphScale := flag.Int("graph-scale", 0, "override graph input scale")
	apps := flag.String("apps", "", "comma-separated app subset (bfs,cc,prd,radii,spmm,silo; \"\" = all)")
	seed := flag.Int64("seed", 0, "override the base RNG seed for synthetic inputs (0 = default)")
	tiny := flag.Bool("tiny", false, "use the fast test-scale configuration (CI smoke)")
	noFF := flag.Bool("no-fastforward", false, "tick every cycle instead of fast-forwarding quiescent spans (identical results, slower)")
	noPredecode := flag.Bool("no-predecode", false, "rename from raw instructions instead of the pre-decoded micro-op stream (identical results, slower)")
	simWorkers := flag.Int("sim-workers", 1, "goroutines ticking simulated cores inside each cell (identical results at any value)")
	speculate := flag.Bool("speculate", false, "run multi-cycle speculative epochs instead of per-cycle barriers (identical results; see docs/SPECULATION.md)")
	epoch := flag.Uint64("epoch", 0, "maximum speculative epoch length in cycles (0 = default; identical results at any value)")
	httpAddr := flag.String("http", "", "serve live sweep introspection on host:port (/top, /debug/vars, /debug/pprof); output stays byte-identical")
	reportOut := flag.String("report-out", "", "write the evaluation matrix as a run-set JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")

	jobs := flag.Int("jobs", 0, "evaluation sweep workers (0 = GOMAXPROCS)")
	shardSpec := flag.String("shard", "", "run only shard i/m of the evaluation matrix, e.g. 0/2 (implies -sweep)")
	sweepOnly := flag.Bool("sweep", false, "run the evaluation sweep only; no figure/table reports")
	failFast := flag.Bool("fail-fast", false, "abort the sweep on the first failed cell")
	sweepCache := flag.String("sweep-cache", "build/sweepcache", "on-disk sweep result cache directory (\"\" disables)")
	warmup := flag.Bool("warmup", false, "fork each cell from a shared warm-cache snapshot (see docs/SWEEP.md)")
	quiet := flag.Bool("quiet", false, "suppress live per-cell sweep progress on stderr")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Names(), "\n"))
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := harness.Default()
	if *tiny {
		cfg = harness.Tiny()
	}
	if *cacheScale > 0 {
		cfg.CacheScale = *cacheScale
	}
	if *graphScale > 0 {
		cfg.GraphScale = *graphScale
	}
	if *apps != "" {
		cfg.AppFilter = *apps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.NoFastForward = *noFF
	cfg.NoPredecode = *noPredecode
	cfg.SimWorkers = *simWorkers
	cfg.Speculate = *speculate
	cfg.SpecEpoch = *epoch

	opts := harness.SweepOptions{Jobs: *jobs, FailFast: *failFast, CacheDir: *sweepCache, Warmup: *warmup}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *shardSpec != "" {
		var ok bool
		opts.Shard, opts.Shards, ok = parseShard(*shardSpec)
		if !ok {
			fatal(fmt.Errorf("bad -shard %q: want i/m with 0 <= i < m, e.g. 0/2", *shardSpec))
		}
		*sweepOnly = true
	}

	if *httpAddr != "" {
		psrv, err := profile.NewServer(*httpAddr)
		if err != nil {
			fatal(err)
		}
		defer psrv.Close()
		fmt.Fprintf(os.Stderr, "introspection: http://%s (/top, /debug/vars, /debug/pprof)\n", psrv.Addr())
		harness.SetProfServer(psrv)
	}

	if *sweepOnly {
		runSweep(cfg, opts, *reportOut, *exp)
	} else {
		names := harness.Names()
		if *exp != "all" {
			names = strings.Split(*exp, ",")
		}
		for _, n := range names {
			start := time.Now()
			if err := harness.Run(n, os.Stdout, cfg, opts); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				exit(1)
			}
			fmt.Println()
			// Timing goes to stderr: stdout stays byte-identical across
			// runs, worker counts and cache states.
			fmt.Fprintf(os.Stderr, "(%s took %.1fs)\n", n, time.Since(start).Seconds())
		}

		if *reportOut != "" {
			if err := writeRunSet(*reportOut, func(f *os.File) error {
				return harness.WriteRunSet(f, cfg, opts, *exp)
			}); err != nil {
				fatal(err)
			}
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// runSweep executes the evaluation matrix (or one shard of it) without
// rendering figures: CI's sharded smoke and cache-warming runs use this.
// Exits non-zero if any cell failed.
func runSweep(cfg harness.Config, opts harness.SweepOptions, reportOut, label string) {
	e, err := harness.Sweep(cfg, opts)
	if err != nil {
		fatal(err)
	}
	st := e.Sweep
	fmt.Printf("sweep: shard %d/%d, %d cells, jobs=%d: %d computed, %d cached, %d failed (%.1fs)\n",
		st.Shard, st.Shards, st.Cells, st.Jobs,
		st.CacheMisses, st.CacheHits, len(st.Failures), st.Wall.Seconds())
	if w := st.Warmup; w.Built > 0 || w.Reused > 0 {
		fmt.Printf("warmup: %d snapshots built (%d cycles), %d cell reuses; roi cycles %d\n",
			w.Built, w.Cycles, w.Reused, st.SimCycles)
	}
	for _, f := range st.Failures {
		fmt.Fprintf(os.Stderr, "FAILED %s\n", f)
	}
	if reportOut != "" {
		if err := writeRunSet(reportOut, func(f *os.File) error {
			return e.WriteRunSet(f, label)
		}); err != nil {
			fatal(err)
		}
	}
	if len(st.Failures) > 0 {
		exit(1)
	}
}

// parseShard parses "i/m" shard specs.
func parseShard(s string) (shard, shards int, ok bool) {
	var i, m int
	if n, err := fmt.Sscanf(s, "%d/%d", &i, &m); err != nil || n != 2 {
		return 0, 0, false
	}
	if i < 0 || m < 1 || i >= m {
		return 0, 0, false
	}
	return i, m, true
}

// writeRunSet creates path and streams a run set into it.
func writeRunSet(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exit stops the CPU profile (deferred handlers do not run through
// os.Exit) before terminating.
func exit(code int) {
	pprof.StopCPUProfile()
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	exit(1)
}
