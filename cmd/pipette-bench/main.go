// Command pipette-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pipette-bench -exp fig2          # one experiment
//	pipette-bench -exp all           # everything (writes EXPERIMENTS-style output)
//	pipette-bench -list              # list experiment names
//	pipette-bench -report-out runs.json   # machine-readable evaluation matrix
//	pipette-bench -exp fig9 -cpuprofile cpu.out   # profile the simulator itself
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pipette/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment name (figN/tableN) or 'all'")
	list := flag.Bool("list", false, "list experiment names and exit")
	cacheScale := flag.Int("cache-scale", 0, "override cache downscale factor")
	graphScale := flag.Int("graph-scale", 0, "override graph input scale")
	reportOut := flag.String("report-out", "", "write the evaluation matrix as a run-set JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Names(), "\n"))
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := harness.Default()
	if *cacheScale > 0 {
		cfg.CacheScale = *cacheScale
	}
	if *graphScale > 0 {
		cfg.GraphScale = *graphScale
	}

	names := harness.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, n := range names {
		start := time.Now()
		if err := harness.Run(n, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", n, time.Since(start).Seconds())
	}

	if *reportOut != "" {
		f, err := os.Create(*reportOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteRunSet(f, cfg, *exp); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// exit stops the CPU profile (deferred handlers do not run through
// os.Exit) before terminating.
func exit(code int) {
	pprof.StopCPUProfile()
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	exit(1)
}
