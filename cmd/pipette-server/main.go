// Command pipette-server runs the simulation-as-a-service front end: an
// HTTP/JSON API that accepts simulation jobs from multiple tenants,
// executes them on a bounded worker fleet over the content-addressed
// sweep cache, dedups identical in-flight requests, and persists every
// job record so a restart resumes interrupted work with byte-identical
// results (docs/SERVER.md).
//
// Usage:
//
//	pipette-server -addr :8080 -data build/server -workers 4
//	curl -XPOST -H 'X-Pipette-Tenant: team-a' -d '{"app":"silo","variant":"pipette","input":"ycsbc","tiny":true}' \
//	    localhost:8080/v1/jobs
//
// SIGTERM or SIGINT starts a graceful drain: running cells get
// -drain-timeout to finish (their results land before exit), queued jobs
// stay queued on disk, and the process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pipette/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "build/server", "data directory (job records + sweep cache)")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	rate := flag.Float64("rate", 0, "per-tenant submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-tenant submission burst (0 = derived from -rate)")
	maxActive := flag.Int("max-active", 0, "per-tenant concurrent-job quota (0 = unlimited)")
	sampleEvery := flag.Uint64("sample-every", 0, "stream telemetry sample period in cycles (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for running cells on shutdown")
	flag.Parse()

	s, err := server.New(server.Config{
		DataDir: *data,
		Workers: *workers,
		Limits: server.TenantLimits{
			Rate:      *rate,
			Burst:     *burst,
			MaxActive: *maxActive,
		},
		SampleEvery: *sampleEvery,
		Log:         os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-server: %v\n", err)
		os.Exit(1)
	}
	s.Start()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "pipette-server: listening on %s (data %s)\n", *addr, *data)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pipette-server: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "pipette-server: shutdown signal, draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	// Stop accepting connections only after the drain: in-flight clients
	// polling their jobs keep working while cells finish.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = hs.Shutdown(shutCtx)
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "pipette-server: drain: %v\n", drainErr)
		os.Exit(1)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "pipette-server: drain timed out; interrupted jobs re-queued for the next start")
		os.Exit(0) // state is consistent on disk; the restart finishes the work
	}
	fmt.Fprintln(os.Stderr, "pipette-server: drained cleanly")
}
