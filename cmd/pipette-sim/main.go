// Command pipette-sim runs a single benchmark variant on the simulated
// system and reports results: a human-readable summary (cycles, IPC, CPI
// stack, queue and RA statistics, cache behaviour, energy breakdown) or a
// machine-readable JSON run report, plus optional telemetry artifacts — a
// Chrome trace-event file (open in ui.perfetto.dev) and a sampled
// time-series metrics file (see docs/TELEMETRY.md).
//
// Usage:
//
//	pipette-sim -app bfs -variant pipette -input Rd
//	pipette-sim -app bfs -variant pipette -json -trace-out trace.json -metrics-out metrics.csv
//	pipette-sim -app spmm -variant data-parallel -input Cg
//	pipette-sim -app silo -variant serial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/core"
	"pipette/internal/energy"
	"pipette/internal/graph"
	"pipette/internal/sim"
	"pipette/internal/sparse"
	"pipette/internal/telemetry"
)

func main() {
	app := flag.String("app", "bfs", "bfs | cc | prd | radii | spmm | silo")
	variant := flag.String("variant", "pipette", "serial | data-parallel | pipette | pipette-nora | streaming")
	input := flag.String("input", "Rd", "graph label (Co/Dy/Fs/Sk/Rd) or matrix label (Am/Co/Cg/Cs/Rm/Pc)")
	cacheScale := flag.Int("cache-scale", 8, "cache downscale factor")
	prdIters := flag.Int("prd-iters", 4, "PageRank-Delta iterations")
	trace := flag.Int("trace", 0, "print the first N committed instructions per core")
	jsonOut := flag.Bool("json", false, "emit the run report as JSON on stdout")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (ui.perfetto.dev)")
	traceBuf := flag.Int("trace-buf", 0, "trace ring capacity in events (default 262144)")
	metricsOut := flag.String("metrics-out", "", "write sampled time-series metrics (.csv, or .json)")
	metricsInterval := flag.Uint64("metrics-interval", 0, "sampling period in cycles (default 1024)")
	flag.Parse()

	b, cores, err := build(*app, *variant, *input, *prdIters)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(*cacheScale)
	cfg.WatchdogCycles = 10_000_000
	s := sim.New(cfg)
	if *traceOut != "" {
		s.EnableTracing(*traceBuf)
	}
	if *metricsOut != "" || *jsonOut {
		s.EnableSampling(*metricsInterval)
	}
	if *trace > 0 {
		for ci, c := range s.Cores {
			left := *trace
			ci := ci
			c.TraceFn = func(cycle uint64, thread, pc int, text string) {
				if left <= 0 {
					return
				}
				left--
				fmt.Printf("trace c%d t%d @%-8d pc=%-4d %s\n", ci, thread, cycle, pc, text)
			}
		}
	}
	r, runErr := bench.Run(s, b)

	// Telemetry artifacts are written even when the run failed — a trace
	// of a deadlock is exactly when you want one.
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, s.Tracer(), s.Sampler())
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(f *os.File) error {
			if strings.HasSuffix(*metricsOut, ".json") {
				return s.Sampler().WriteJSON(f)
			}
			return s.Sampler().WriteCSV(f, core.StallNames())
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		rep := r.Report()
		rep.App, rep.Variant, rep.Input = *app, *variant, *input
		if runErr != nil {
			rep.Error = runErr.Error()
		} else {
			rep.Energy = energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles).Report()
		}
		rep.Telemetry = telemetry.TelemetrySummary(s.Tracer(), s.Sampler(), core.StallNames())
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "run failed: %v\n", runErr)
			os.Exit(1)
		}
		return
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", runErr)
		os.Exit(1)
	}
	report(r)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func build(app, variant, input string, prdIters int) (bench.Builder, int, error) {
	cores := 1
	if variant == bench.VStreaming {
		cores = 4
	}
	var g *graph.Graph
	for _, in := range graph.Inputs(1) {
		if in.Label == input {
			g = in.G
		}
	}
	var m *sparse.Matrix
	for _, in := range sparse.Inputs(1) {
		if in.Label == input {
			m = in.M
		}
	}
	pick := func(serial, dp, pip, nora, str bench.Builder) (bench.Builder, int, error) {
		switch variant {
		case bench.VSerial:
			return serial, cores, nil
		case bench.VDataParallel:
			return dp, cores, nil
		case bench.VPipette:
			return pip, cores, nil
		case bench.VPipetteNoRA:
			return nora, cores, nil
		case bench.VStreaming:
			return str, cores, nil
		}
		return nil, 0, fmt.Errorf("unknown variant %q", variant)
	}
	switch app {
	case "bfs":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(bench.BFSSerial(g, 0), bench.BFSDataParallel(g, 0, 4),
			bench.BFSPipette(g, 0, 4, true), bench.BFSPipette(g, 0, 4, false), bench.BFSStreaming(g, 0))
	case "cc":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(bench.CCSerial(g), bench.CCDataParallel(g, 4),
			bench.CCPipette(g, true), bench.CCPipette(g, false), bench.CCStreaming(g))
	case "prd":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(bench.PRDSerial(g, prdIters), bench.PRDDataParallel(g, prdIters, 4),
			bench.PRDPipette(g, prdIters, true), bench.PRDPipette(g, prdIters, false),
			bench.PRDStreaming(g, prdIters))
	case "radii":
		if g == nil {
			return nil, 0, fmt.Errorf("unknown graph %q", input)
		}
		return pick(bench.RadiiSerial(g), bench.RadiiDataParallel(g, 4),
			bench.RadiiPipette(g, true), bench.RadiiPipette(g, false), bench.RadiiStreaming(g))
	case "spmm":
		if m == nil {
			return nil, 0, fmt.Errorf("unknown matrix %q", input)
		}
		return pick(bench.SpMMSerial(m, m), bench.SpMMDataParallel(m, m, 4),
			bench.SpMMPipette(m, m, true), bench.SpMMPipette(m, m, false), bench.SpMMStreaming(m, m))
	case "silo":
		const k, q = 4000, 600
		return pick(bench.SiloSerial(k, q), bench.SiloDataParallel(k, q, 4),
			bench.SiloPipette(k, q, true), bench.SiloPipette(k, q, false), bench.SiloStreaming(k, q))
	}
	return nil, 0, fmt.Errorf("unknown app %q", app)
}

func report(r sim.Result) {
	fmt.Printf("cycles           %d\n", r.Cycles)
	fmt.Printf("instructions     %d\n", r.Committed)
	fmt.Printf("IPC              %.3f\n", r.IPC())
	for i, cs := range r.CoreStats {
		tot := float64(cs.CPI.Total())
		if tot == 0 {
			tot = 1
		}
		fmt.Printf("core %d: commit=%d uops=%d ipc=%.2f branches=%d (%.1f%% mispred) cvtraps=%d enqtraps=%d skips=%d (%d discarded)\n",
			i, cs.Committed, cs.Uops, float64(cs.Committed)/float64(cs.Cycles),
			cs.Branches, 100*float64(cs.Mispredicts)/float64(maxU(cs.Branches, 1)),
			cs.CVTraps, cs.EnqTraps, cs.SkipOps, cs.SkipDiscard)
		fmt.Printf("        cpi-stack: issue=%.2f backend=%.2f queue=%.2f front=%.2f\n",
			float64(cs.CPI.Issue)/tot, float64(cs.CPI.Backend)/tot,
			float64(cs.CPI.Queue)/tot, float64(cs.CPI.Front)/tot)
		fmt.Printf("        enq=%d deq=%d rf-reads=%d rf-writes=%d qrm-regs(mean/peak)=%.1f/%d\n",
			cs.Enqueues, cs.Dequeues, cs.RegReads, cs.RegWrites,
			cs.MeanMappedRegs(), cs.QueueOccupancyMax)
	}
	c := r.CacheStats
	fmt.Printf("cache: L1=%d L2=%d L3=%d DRAM=%d prefetch=%d wb=%d inval=%d\n",
		c.L1Hits, c.L2Hits, c.L3Hits, c.DRAMAccesses, c.Prefetches, c.Writebacks, c.Invalidations)
	e := energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles)
	fmt.Printf("energy (pJ): core=%.3g cache=%.3g dram=%.3g static=%.3g total=%.3g\n",
		e.CoreDyn, e.CacheDyn, e.DRAMDyn, e.Static, e.Total())
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
