// Command pipette-sim runs a single benchmark variant on the simulated
// system and reports results: a human-readable summary (cycles, IPC, CPI
// stack, queue and RA statistics, cache behaviour, energy breakdown) or a
// machine-readable JSON run report, plus optional telemetry artifacts — a
// Chrome trace-event file (open in ui.perfetto.dev) and a sampled
// time-series metrics file (see docs/TELEMETRY.md).
//
// Long runs can checkpoint periodically and resume after a crash (see
// docs/CHECKPOINT.md): -checkpoint-every writes a pipette.snapshot/v1 file
// atomically every N cycles, and -resume rebuilds the recorded workload,
// restores the snapshot, and continues — producing output identical to the
// uninterrupted run.
//
// Usage:
//
//	pipette-sim -app bfs -variant pipette -input Rd
//	pipette-sim -app bfs -variant pipette -json -trace-out trace.json -metrics-out metrics.csv
//	pipette-sim -app spmm -variant data-parallel -input Cg
//	pipette-sim -app silo -variant serial
//	pipette-sim -app cc -variant streaming -checkpoint-every 50000 -checkpoint-out cc.snap
//	pipette-sim -resume cc.snap
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/checkpoint"
	"pipette/internal/core"
	"pipette/internal/energy"
	"pipette/internal/profile"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

func main() {
	app := flag.String("app", "bfs", "bfs | cc | prd | radii | spmm | silo")
	variant := flag.String("variant", "pipette", "serial | data-parallel | pipette | pipette-nora | streaming")
	input := flag.String("input", "Rd", "graph label (Co/Dy/Fs/Sk/Rd) or matrix label (Am/Co/Cg/Cs/Rm/Pc)")
	cacheScale := flag.Int("cache-scale", 8, "cache downscale factor")
	prdIters := flag.Int("prd-iters", 4, "PageRank-Delta iterations")
	seed := flag.Int64("seed", 1, "base RNG seed for synthetic inputs")
	trace := flag.Int("trace", 0, "print the first N committed instructions per core")
	jsonOut := flag.Bool("json", false, "emit the run report as JSON on stdout")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (ui.perfetto.dev)")
	traceBuf := flag.Int("trace-buf", 0, "trace ring capacity in events (default 262144)")
	metricsOut := flag.String("metrics-out", "", "write sampled time-series metrics (.csv, or .json)")
	metricsInterval := flag.Uint64("metrics-interval", 0, "sampling period in cycles (default 1024)")
	noFF := flag.Bool("no-fastforward", false, "tick every cycle instead of fast-forwarding quiescent spans (identical results, slower)")
	noPredecode := flag.Bool("no-predecode", false, "rename from raw instructions instead of the pre-decoded micro-op stream (identical results, slower)")
	simWorkers := flag.Int("sim-workers", 1, "goroutines ticking simulated cores each cycle (identical results at any value)")
	speculate := flag.Bool("speculate", false, "run multi-cycle speculative epochs instead of per-cycle barriers (identical results; see docs/SPECULATION.md)")
	epoch := flag.Uint64("epoch", 0, "maximum speculative epoch length in cycles (0 = default; identical results at any value)")
	profileOn := flag.Bool("profile", false, "enable cycle-accounting profiling (CPI stacks, queue histograms; identical simulated results)")
	httpAddr := flag.String("http", "", "serve live introspection on host:port (/top, /debug/vars, /debug/pprof); implies -profile")
	httpHold := flag.Duration("http-hold", 0, "keep the -http server up this long after the run (smoke tests)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "write a snapshot every N simulated cycles (0 disables)")
	ckptOut := flag.String("checkpoint-out", "pipette.snap", "snapshot file for -checkpoint-every")
	resume := flag.String("resume", "", "resume from a snapshot file (workload flags come from its metadata)")
	flag.Parse()

	// A resumed run rebuilds the exact workload recorded in the snapshot;
	// command-line workload flags are superseded by its metadata.
	var resumeMeta checkpoint.Meta
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		resumeMeta, _, err = checkpoint.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		wl := resumeMeta.Workload
		if wl.App == "" || wl.Variant == "" {
			fatal(fmt.Errorf("%s records no workload metadata; it cannot be resumed by pipette-sim", *resume))
		}
		*app, *variant, *input = wl.App, wl.Variant, wl.Input
		if wl.Seed != 0 {
			*seed = wl.Seed
		}
		if wl.PRDIters > 0 {
			*prdIters = wl.PRDIters
		}
		if wl.CacheScale > 0 {
			*cacheScale = wl.CacheScale
		}
	}

	b, cores, err := bench.Lookup(*app, *variant, *input, *prdIters, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Cache = cache.DefaultConfig().Scale(*cacheScale)
	cfg.WatchdogCycles = 10_000_000
	s := sim.New(cfg)
	s.SetFastForward(!*noFF)
	s.SetPredecode(!*noPredecode)
	s.SetWorkers(*simWorkers)
	s.SetSpeculate(*speculate)
	s.SetEpoch(*epoch)
	if *traceOut != "" {
		s.EnableTracing(*traceBuf)
	}
	if *metricsOut != "" || *jsonOut {
		s.EnableSampling(*metricsInterval)
	}
	if *httpAddr != "" {
		*profileOn = true
		s.EnableKernelProf()
	}
	if *profileOn {
		s.EnableProfiling()
	}
	var psrv *profile.Server
	if *httpAddr != "" {
		var err error
		psrv, err = profile.NewServer(*httpAddr)
		if err != nil {
			fatal(err)
		}
		defer psrv.Close()
		fmt.Fprintf(os.Stderr, "introspection: http://%s (/top, /debug/vars, /debug/pprof)\n", psrv.Addr())
	}
	if *trace > 0 {
		for ci, c := range s.Cores {
			left := *trace
			ci := ci
			c.TraceFn = func(cycle uint64, thread, pc int, text string) {
				if left <= 0 {
					return
				}
				left--
				fmt.Printf("trace c%d t%d @%-8d pc=%-4d %s\n", ci, thread, cycle, pc, text)
			}
		}
	}

	// Builder first (programs, queues, units), then restore overwrites the
	// dynamic state — the checkpoint restore contract.
	check := b(s)
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		_, err = s.Restore(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("resuming %s: %w", *resume, err))
		}
		fmt.Fprintf(os.Stderr, "resumed %s/%s/%s at cycle %d\n", *app, *variant, *input, s.Now())
	}

	wl := checkpoint.Workload{
		App: *app, Variant: *variant, Input: *input,
		Seed: *seed, CacheScale: *cacheScale, PRDIters: *prdIters,
	}
	var push func()
	if psrv != nil {
		label := fmt.Sprintf("%s/%s/%s", *app, *variant, *input)
		push = func() { psrv.Update(s.ProfSnapshot(label)) }
	}
	r, runErr := runWithCheckpoints(s, *ckptEvery, *ckptOut, wl, push)
	if psrv != nil && *httpHold > 0 {
		fmt.Fprintf(os.Stderr, "holding -http server for %v\n", *httpHold)
		time.Sleep(*httpHold)
	}
	if runErr == nil {
		if err := check(); err != nil {
			runErr = fmt.Errorf("result check failed: %w", err)
		}
	}

	// Telemetry artifacts are written even when the run failed — a trace
	// of a deadlock is exactly when you want one.
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, s.Tracer(), s.Sampler())
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(f *os.File) error {
			if strings.HasSuffix(*metricsOut, ".json") {
				return s.Sampler().WriteJSON(f)
			}
			return s.Sampler().WriteCSV(f, core.StallNames())
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		rep := r.Report()
		rep.App, rep.Variant, rep.Input = *app, *variant, *input
		rep.Seed = *seed
		if runErr != nil {
			rep.Error = runErr.Error()
		} else {
			rep.Energy = energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles).Report()
		}
		rep.Telemetry = telemetry.TelemetrySummary(s.Tracer(), s.Sampler(), core.StallNames())
		if *speculate {
			rep.Speculation = specReport(s.SpecStats())
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "run failed: %v\n", runErr)
			os.Exit(1)
		}
		return
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", runErr)
		os.Exit(1)
	}
	report(r)
	if *speculate {
		st := s.SpecStats()
		fmt.Printf("speculation: epochs=%d commits=%d aborts=%d cycles committed=%d rerun=%d barrier=%d ff=%d\n",
			st.Epochs, st.Commits, st.Aborts, st.CommittedCycles, st.RerunCycles, st.BarrierCycles, st.FFCycles)
	}
}

// specReport converts the kernel's epoch accounting into the run-report
// schema section.
func specReport(st profile.SpecStats) *telemetry.SpecReport {
	return &telemetry.SpecReport{
		Epochs: st.Epochs, Commits: st.Commits, Aborts: st.Aborts,
		CommittedCycles: st.CommittedCycles, AbortedCycles: st.AbortedCycles,
		RerunCycles: st.RerunCycles, BarrierCycles: st.BarrierCycles,
		FFCycles: st.FFCycles, TotalCycles: st.TotalCycles,
	}
}

// profileRefresh is the RunUntil segment length used to refresh the live
// introspection snapshot when checkpointing doesn't already segment the
// run. Snapshots are only taken between segments — never mid-cycle — so
// the server always serves a cycle-boundary view.
const profileRefresh = 250_000

// runWithCheckpoints drives the simulation, atomically rewriting the
// snapshot file every `every` cycles (0 = plain run) and pushing a fresh
// introspection snapshot (push, may be nil) after every segment. Snapshot
// writes never perturb simulated state, so the run is cycle-identical with
// or without checkpointing or profiling.
func runWithCheckpoints(s *sim.System, every uint64, path string, wl checkpoint.Workload, push func()) (sim.Result, error) {
	if every == 0 && push == nil {
		return s.Run()
	}
	seg := every
	if seg == 0 {
		seg = profileRefresh
	}
	for {
		r, err := s.RunUntil(s.Now() + seg)
		if push != nil {
			push()
		}
		if err != nil || s.Done() {
			return r, err
		}
		if every != 0 {
			if err := saveSnapshot(s, path, wl); err != nil {
				return r, fmt.Errorf("checkpointing at cycle %d: %w", s.Now(), err)
			}
			fmt.Fprintf(os.Stderr, "checkpoint: cycle %d -> %s\n", s.Now(), path)
		}
	}
}

// saveSnapshot writes the snapshot via temp file + rename so a crash
// mid-write never destroys the previous good checkpoint.
func saveSnapshot(s *sim.System, path string, wl checkpoint.Workload) error {
	tmp, err := os.CreateTemp(fileDir(path), ".snap*")
	if err != nil {
		return err
	}
	if err := s.Save(tmp, wl); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func fileDir(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func report(r sim.Result) {
	fmt.Printf("cycles           %d\n", r.Cycles)
	fmt.Printf("instructions     %d\n", r.Committed)
	fmt.Printf("IPC              %.3f\n", r.IPC())
	for i, cs := range r.CoreStats {
		tot := float64(cs.CPI.Total())
		if tot == 0 {
			tot = 1
		}
		fmt.Printf("core %d: commit=%d uops=%d ipc=%.2f branches=%d (%.1f%% mispred) cvtraps=%d enqtraps=%d skips=%d (%d discarded)\n",
			i, cs.Committed, cs.Uops, float64(cs.Committed)/float64(cs.Cycles),
			cs.Branches, 100*float64(cs.Mispredicts)/float64(maxU(cs.Branches, 1)),
			cs.CVTraps, cs.EnqTraps, cs.SkipOps, cs.SkipDiscard)
		fmt.Printf("        cpi-stack: issue=%.2f backend=%.2f queue=%.2f front=%.2f\n",
			float64(cs.CPI.Issue)/tot, float64(cs.CPI.Backend)/tot,
			float64(cs.CPI.Queue)/tot, float64(cs.CPI.Front)/tot)
		fmt.Printf("        enq=%d deq=%d rf-reads=%d rf-writes=%d qrm-regs(mean/peak)=%.1f/%d\n",
			cs.Enqueues, cs.Dequeues, cs.RegReads, cs.RegWrites,
			cs.MeanMappedRegs(), cs.QueueOccupancyMax)
	}
	for _, ps := range r.Prof {
		tot := float64(ps.Cycles) * float64(ps.Width)
		if tot == 0 {
			continue
		}
		fmt.Printf("core %d slots:", ps.Core)
		for cat, n := range ps.Slots {
			if n > 0 {
				fmt.Printf(" %s=%.1f%%", profile.Category(cat), 100*float64(n)/tot)
			}
		}
		fmt.Println()
	}
	c := r.CacheStats
	fmt.Printf("cache: L1=%d L2=%d L3=%d DRAM=%d prefetch=%d wb=%d inval=%d\n",
		c.L1Hits, c.L2Hits, c.L3Hits, c.DRAMAccesses, c.Prefetches, c.Writebacks, c.Invalidations)
	e := energy.Compute(energy.DefaultParams(), r.CoreStats, r.CacheStats, r.Cycles)
	fmt.Printf("energy (pJ): core=%.3g cache=%.3g dram=%.3g static=%.3g total=%.3g\n",
		e.CoreDyn, e.CacheDyn, e.DRAMDyn, e.Static, e.Total())
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
