// Command pipette-kernelbench measures simulation-kernel throughput: each
// selected row runs once with quiescence fast-forward enabled and once with
// the kernel ticking every cycle (-no-fastforward semantics), recording
// simulated cycles per host second and host nanoseconds per simulated cycle.
// Results are bit-identical between the two runs (the equivalence test
// matrix asserts this); only wall-clock differs, and the ratio is the
// fast-forward speedup.
//
// Rows come in three regimes:
//
//   - "std": the harness evaluation configuration (scale-8 caches, stream
//     prefetch on, scale-1 inputs via bench.Lookup) — the pipette variant of
//     every app, tracking general kernel throughput.
//   - "membound": the memory-latency-bound regime fast-forward targets
//     (scale-64 caches, prefetch off, 4x road graph, single PRD sweep) —
//     serial and pipette BFS/PRD. The serial rows are the acceptance
//     workloads for the >= 2x fast-forward criterion: with decoupling
//     disabled, the core spends most cycles provably quiescent behind
//     180-cycle DRAM misses, exactly the phases the kernel skips.
//   - "parallel": the parallel tick kernel (docs/PARALLEL.md) — 4-sim-core
//     streaming workloads measured with the single-goroutine kernel versus
//     -sim-workers=4. Both runs keep fast-forward on (the production
//     configuration); the speedup is single-goroutine vs worker-pool
//     throughput on a bit-identical simulation. It only materializes with
//     enough host cores, so the speedup floor is skipped by -check on hosts
//     with fewer than 4 CPUs (the document always records host_cpus).
//   - "decoded": the pre-decoded micro-op frontend (docs/FRONTEND.md) on the
//     membound acceptance workloads (serial BFS/PRD, same configuration as
//     the membound rows) — base is the fully escape-hatched kernel
//     (-no-predecode -no-fastforward, the legacy everything-off path),
//     contrast is the production fast path (predecode + fast-forward). The
//     ratio is the total speed win of the production frontend stack over the
//     legacy kernel and holds the >= 2x acceptance floor.
//   - "speculative": the speculative epoch kernel (docs/SPECULATION.md) on
//     4-sim-core streaming workloads — base is the per-cycle barrier kernel
//     at -sim-workers=4, contrast the epoch kernel at the same worker count
//     (both fast-forward on), so the ratio isolates what amortizing the
//     per-cycle barrier over whole epochs buys on an otherwise identical
//     parallel configuration. Like the parallel regime it is host-gated:
//     the floor (>= 1.3x) only applies on hosts with >= 4 CPUs.
//
// Usage:
//
//	pipette-kernelbench -out BENCH_kernel.json        # make perfbench
//	pipette-kernelbench -apps bfs,prd -check build/baselines/kernel_thresholds.txt
//	pipette-kernelbench -apps bfs,prd -update-baseline build/baselines/kernel_thresholds.txt
//
// The -check mode guards base-kernel ns/cycle against loose (4x measured)
// ceilings and the per-row speedup against recorded floors; scripts/
// benchguard.sh drives it in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pipette/internal/bench"
	"pipette/internal/cache"
	"pipette/internal/graph"
	"pipette/internal/sim"
)

// Schema identifies the BENCH_kernel.json document format. v2: adds host
// metadata (host_cpus, gomaxprocs, sim_workers) and the "parallel" regime,
// whose base/contrast modes are worker counts rather than fast-forward
// settings. v3: adds the "decoded" regime, whose base mode disables both
// the micro-op frontend and fast-forward and whose contrast enables both.
// v4: adds the "speculative" regime (barrier vs epoch kernel at equal
// worker count) and moves host gating onto the rows: each run records the
// host_cpus/gomaxprocs it was measured under and a host_gated marker when
// its speedup floor only applies above a minimum host CPU count — so
// merged or cross-host documents gate each row on its own provenance, not
// on whichever host happened to assemble the file.
const Schema = "pipette.kernelbench/v4"

// parallelWorkers is the -sim-workers setting of the parallel-regime
// contrast runs (matches the 4 simulated cores of the streaming variants).
const parallelWorkers = 4

// run is one measured row. The two modes are the regime's base kernel and
// its contrast: for std/membound rows Ticked is the -no-fastforward kernel
// and FastForward the quiescence-fast-forwarding one (predecode on in both
// modes); for parallel rows Ticked is the single-goroutine kernel and
// FastForward the -sim-workers pool (Workers records the count), both with
// fast-forward enabled; for decoded rows Ticked is the everything-off
// legacy kernel (-no-predecode -no-fastforward) and FastForward the full
// production fast path (predecode + fast-forward). In every regime the
// simulated results are bit-identical between the two modes — the row
// fails if even the cycle count differs.
type run struct {
	Regime  string `json:"regime"` // "std", "membound", "parallel", "decoded" or "speculative"
	App     string `json:"app"`
	Variant string `json:"variant"`
	Input   string `json:"input"`
	Cycles  uint64 `json:"cycles"` // simulated ROI cycles (identical both modes)

	Ticked      mode    `json:"ticked"`            // base kernel (see above)
	FastForward mode    `json:"fast_forward"`      // contrast kernel
	Workers     int     `json:"workers,omitempty"` // contrast -sim-workers (parallel/speculative regimes)
	Speedup     float64 `json:"speedup"`           // FastForward.CyclesPerSec / Ticked.CyclesPerSec

	// Measurement provenance: the host this row actually ran on, and
	// whether its speedup floor is host-gated (only enforced when
	// host_cpus >= the contrast worker count). Recorded per run so the
	// gate survives document merges across hosts.
	HostCPUs   int  `json:"host_cpus"`
	GoMaxProcs int  `json:"gomaxprocs"`
	HostGated  bool `json:"host_gated,omitempty"`
}

type mode struct {
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
}

// doc field order is the JSON key order (encoding/json emits struct fields
// in declaration order), so the document layout is deterministic.
type doc struct {
	Schema     string `json:"schema"`
	HostCPUs   int    `json:"host_cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	SimWorkers int    `json:"sim_workers"` // parallel-regime contrast worker count
	Runs       []run  `json:"runs"`
}

// memBoundGraphScale sizes the road graph of the membound rows (4x the
// harness input, so the footprint is far beyond the scaled-down LLC).
const memBoundGraphScale = 4

type spec struct {
	regime, app, variant, input string
}

var matrix = []spec{
	{"membound", "bfs", bench.VSerial, "Rd"},
	{"membound", "bfs", bench.VPipette, "Rd"},
	{"membound", "prd", bench.VSerial, "Rd"},
	{"membound", "prd", bench.VPipette, "Rd"},
	{"std", "bfs", bench.VPipette, "Rd"},
	{"std", "cc", bench.VPipette, "Co"},
	{"std", "prd", bench.VPipette, "Rd"},
	{"std", "radii", bench.VPipette, "Co"},
	{"std", "spmm", bench.VPipette, "Am"},
	{"std", "silo", bench.VPipette, "ycsbc"},
	// The decoded acceptance row is serial BFS only: PRD's production-vs-
	// legacy ratio sits too close to the 2x floor (~2.0-2.5x depending on
	// host load) to make a stable CI guard, while BFS clears it with ~50%
	// margin.
	{"decoded", "bfs", bench.VSerial, "Rd"},
	{"parallel", "bfs", bench.VStreaming, "Rd"},
	{"parallel", "prd", bench.VStreaming, "Rd"},
	{"speculative", "bfs", bench.VStreaming, "Rd"},
	{"speculative", "prd", bench.VStreaming, "Rd"},
}

// hostGatedMin returns the minimum host CPU count a regime's speedup floor
// requires (0 = always enforced). Contrast kernels that need host
// parallelism cannot beat their base on a starved host.
func hostGatedMin(regime string) int {
	switch regime {
	case "parallel", "speculative":
		return parallelWorkers
	}
	return 0
}

// resolve maps a row spec to its workload builder, core count and system
// configuration.
func resolve(sp spec) (bench.Builder, int, sim.Config, error) {
	cfg := sim.DefaultConfig()
	cfg.WatchdogCycles = 10_000_000
	if sp.regime == "std" || sp.regime == "parallel" || sp.regime == "speculative" {
		b, cores, err := bench.Lookup(sp.app, sp.variant, sp.input, 2, 1)
		cfg.Cache = cache.DefaultConfig().Scale(8)
		return b, cores, cfg, err
	}
	cfg.Cache = cache.DefaultConfig().Scale(64)
	cfg.Cache.StreamPrefetch = false
	var g *graph.Graph
	for _, in := range graph.Inputs(memBoundGraphScale, 1) {
		if in.Label == sp.input {
			g = in.G
		}
	}
	if g == nil {
		return nil, 0, cfg, fmt.Errorf("unknown graph %q", sp.input)
	}
	switch {
	case sp.app == "bfs" && sp.variant == bench.VSerial:
		return bench.BFSSerial(g, 0), 1, cfg, nil
	case sp.app == "bfs" && sp.variant == bench.VPipette:
		return bench.BFSPipette(g, 0, 4, true), 1, cfg, nil
	case sp.app == "prd" && sp.variant == bench.VSerial:
		return bench.PRDSerial(g, 1), 1, cfg, nil
	case sp.app == "prd" && sp.variant == bench.VPipette:
		return bench.PRDPipette(g, 1, true), 1, cfg, nil
	}
	return nil, 0, cfg, fmt.Errorf("no membound row for %s/%s", sp.app, sp.variant)
}

func measure(sp spec, ff bool, workers int, predecode, speculate bool) (uint64, float64, error) {
	b, cores, cfg, err := resolve(sp)
	if err != nil {
		return 0, 0, err
	}
	cfg.Cores = cores
	s := sim.New(cfg)
	s.SetFastForward(ff)
	s.SetWorkers(workers)
	s.SetPredecode(predecode)
	s.SetSpeculate(speculate)
	// Time the simulation only: workload construction (graph layout into
	// simulated memory) and result validation are kernel-independent.
	check := b(s)
	start := time.Now()
	r, err := s.Run()
	wall := time.Since(start).Seconds()
	if err == nil {
		if cerr := check(); cerr != nil {
			err = fmt.Errorf("result check failed: %w", cerr)
		}
	}
	if err != nil {
		return 0, 0, fmt.Errorf("%s %s/%s/%s ff=%v: %w", sp.regime, sp.app, sp.variant, sp.input, ff, err)
	}
	return r.Cycles, wall, nil
}

func main() {
	apps := flag.String("apps", "", "comma-separated app subset (\"\" = all)")
	out := flag.String("out", "", "write the measurement document to this file")
	check := flag.String("check", "", "compare against a threshold baseline file; exit 1 on regression")
	update := flag.String("update-baseline", "", "rewrite the threshold baseline file from this run")
	flag.Parse()

	keep := map[string]bool{}
	for _, a := range strings.Split(*apps, ",") {
		if a = strings.TrimSpace(a); a != "" {
			keep[a] = true
		}
	}

	d := doc{Schema: Schema, HostCPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), SimWorkers: parallelWorkers}
	for _, sp := range matrix {
		if len(keep) > 0 && !keep[sp.app] {
			continue
		}
		// Base kernel first, then the contrast; one warm-up-free run each —
		// the workloads are long enough that timer noise is in the low
		// percents. std/membound contrast fast-forward; parallel rows keep
		// fast-forward on in both modes and contrast the worker pool.
		var cyc, conCyc uint64
		var baseWall, conWall float64
		var err error
		switch sp.regime {
		case "parallel":
			cyc, baseWall, err = measure(sp, true, 1, true, false)
			if err == nil {
				conCyc, conWall, err = measure(sp, true, parallelWorkers, true, false)
			}
		case "speculative":
			cyc, baseWall, err = measure(sp, true, parallelWorkers, true, false)
			if err == nil {
				conCyc, conWall, err = measure(sp, true, parallelWorkers, true, true)
			}
		case "decoded":
			cyc, baseWall, err = measure(sp, false, 1, false, false)
			if err == nil {
				conCyc, conWall, err = measure(sp, true, 1, true, false)
			}
		default:
			cyc, baseWall, err = measure(sp, false, 1, true, false)
			if err == nil {
				conCyc, conWall, err = measure(sp, true, 1, true, false)
			}
		}
		if err != nil {
			fatal(err)
		}
		if conCyc != cyc {
			fatal(fmt.Errorf("%s/%s/%s/%s: contrast run changed the cycle count: %d vs %d",
				sp.regime, sp.app, sp.variant, sp.input, conCyc, cyc))
		}
		r := run{
			Regime: sp.regime, App: sp.app, Variant: sp.variant, Input: sp.input, Cycles: cyc,
			Ticked:      newMode(cyc, baseWall),
			FastForward: newMode(cyc, conWall),
			HostCPUs:    runtime.NumCPU(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			HostGated:   hostGatedMin(sp.regime) > 0,
		}
		if sp.regime == "parallel" || sp.regime == "speculative" {
			r.Workers = parallelWorkers
		}
		r.Speedup = r.FastForward.CyclesPerSec / r.Ticked.CyclesPerSec
		d.Runs = append(d.Runs, r)
		fmt.Fprintf(os.Stderr, "%-8s %-6s %-10s %-5s %12d cycles  base %8.0f c/s  contrast %9.0f c/s  speedup %5.2fx\n",
			sp.regime, sp.app, sp.variant, sp.input, cyc, r.Ticked.CyclesPerSec, r.FastForward.CyclesPerSec, r.Speedup)
	}
	if len(d.Runs) == 0 {
		fatal(fmt.Errorf("no apps selected by -apps %q", *apps))
	}

	if *out != "" {
		if err := writeJSON(*out, d); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *update != "" {
		if err := writeBaseline(*update, d); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kernelbench: baseline rewritten: %s\n", *update)
	}
	if *check != "" {
		if err := checkBaseline(*check, d); err != nil {
			fatal(err)
		}
	}
}

func newMode(cycles uint64, wall float64) mode {
	return mode{
		WallSeconds:  wall,
		CyclesPerSec: float64(cycles) / wall,
		NsPerCycle:   wall * 1e9 / float64(cycles),
	}
}

func key(r run) string { return r.Regime + "/" + r.App + "/" + r.Variant + "/" + r.Input }

// writeBaseline records, per row, a ceiling on base-kernel ns/cycle (4x
// measured, loose enough that shared-runner noise cannot trip it) and a
// floor on the contrast speedup (half the measured ratio, min 1.0 — the
// ratio is host-speed independent, so it is a much tighter guard). Parallel
// rows floor at the 1.5x acceptance criterion instead: the measured ratio
// depends on the host CPU count, but any >= 4-CPU host must clear 1.5x
// (hosts below that skip the floor at check time). Speculative rows floor
// at the 1.3x acceptance criterion under the same host gate.
func writeBaseline(path string, d doc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# Kernel-throughput thresholds: regime/app/variant/input max-base-ns-per-cycle min-speedup.")
	fmt.Fprintln(w, "# std/membound rows contrast fast-forward against the ticked kernel; parallel")
	fmt.Fprintln(w, "# rows contrast -sim-workers=4 against the single-goroutine kernel, and")
	fmt.Fprintln(w, "# speculative rows the epoch kernel against the per-cycle barrier at equal")
	fmt.Fprintln(w, "# worker count (both regimes' speedup floors are skipped on hosts with")
	fmt.Fprintln(w, "# fewer than 4 CPUs).")
	fmt.Fprintln(w, "# Decoded rows contrast the production fast path (predecode + fast-forward)")
	fmt.Fprintln(w, "# against the legacy everything-off kernel and hold the 2x acceptance floor.")
	fmt.Fprintln(w, "# Loose ceilings (4x measured ns/cycle, 0.5x measured speedup, floor 1.0;")
	fmt.Fprintln(w, "# parallel floor 1.5, speculative floor 1.3, decoded floor 2.0) so runner")
	fmt.Fprintln(w, "# noise cannot trip them. Regenerate with:")
	fmt.Fprintln(w, "#   go run ./cmd/pipette-kernelbench -apps <apps> -update-baseline <this file>")
	for _, r := range d.Runs {
		floor := r.Speedup / 2
		if floor < 1 {
			floor = 1
		}
		if r.Regime == "parallel" && floor < 1.5 {
			floor = 1.5
		}
		if r.Regime == "speculative" && floor < 1.3 {
			floor = 1.3
		}
		if r.Regime == "decoded" && floor < 2 {
			floor = 2
		}
		fmt.Fprintf(w, "%s %d %.2f\n", key(r), uint64(r.Ticked.NsPerCycle*4)+1, floor)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func checkBaseline(path string, d doc) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("kernelbench: missing baseline %s (run with -update-baseline)", path)
	}
	defer f.Close()
	limits := map[string][2]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var k string
		var ns, spd float64
		if _, err := fmt.Sscanf(line, "%s %f %f", &k, &ns, &spd); err != nil {
			return fmt.Errorf("kernelbench: bad baseline line %q: %w", line, err)
		}
		limits[k] = [2]float64{ns, spd}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fail := false
	for _, r := range d.Runs {
		lim, ok := limits[key(r)]
		if !ok {
			fmt.Fprintf(os.Stderr, "kernelbench: no threshold for %s (rerun -update-baseline)\n", key(r))
			fail = true
			continue
		}
		if r.Ticked.NsPerCycle > lim[0] {
			fmt.Fprintf(os.Stderr, "kernelbench: FAIL %s: base kernel %.1f ns/cycle exceeds %.1f\n",
				key(r), r.Ticked.NsPerCycle, lim[0])
			fail = true
		} else if min := hostGatedMin(r.Regime); min > 0 && r.HostCPUs < min {
			// A parallelism-dependent contrast cannot beat its base without
			// host cores to run on; the ns/cycle ceiling above still guards
			// the row. Gate on the row's own recorded host, not the
			// document assembler's.
			fmt.Fprintf(os.Stderr, "kernelbench: skip %s speedup floor: measured on %d CPUs (< %d)\n",
				key(r), r.HostCPUs, min)
		} else if r.Speedup < lim[1] {
			fmt.Fprintf(os.Stderr, "kernelbench: FAIL %s: speedup %.2fx below floor %.2fx\n",
				key(r), r.Speedup, lim[1])
			fail = true
		} else {
			fmt.Fprintf(os.Stderr, "kernelbench: ok %s (%.1f ns/cycle <= %.1f, speedup %.2fx >= %.2fx)\n",
				key(r), r.Ticked.NsPerCycle, lim[0], r.Speedup, lim[1])
		}
	}
	if fail {
		return fmt.Errorf("kernelbench: thresholds exceeded")
	}
	return nil
}

func writeJSON(path string, d doc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
