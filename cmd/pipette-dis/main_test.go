package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pipette/internal/isa"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestUopsGolden pins the -uops rendering: the micro-op stream for a
// program exercising every fusion class (addr-gen, rmw, cmp-br) plus
// queue-bound ops that must never fuse. Regenerate with -update after a
// deliberate format change.
func TestUopsGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fusion.s"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := isa.ParseAsm(string(src))
	if err != nil {
		t.Fatal(err)
	}
	got := isa.Predecode(p).Disassemble()

	goldenPath := filepath.Join("testdata", "fusion.uops.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-uops output changed (run `go test ./cmd/pipette-dis -update` if deliberate)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
