; exercises every fusion class and the operand metadata the -uops dump shows
.name fusion-demo
.map r10 q0 out
.map r11 q1 in
.set r1 8
loop:
  addi r2, r1, 64       ; addr-gen ...
  ld8 r3, r2, 0         ; ... fused load
  addi r4, r1, 128      ; addr-gen ...
  fetchadd r5, r4, r3   ; ... fused rmw
  add r11, r10, r3      ; deq q0 -> enq q1 (never fused)
  subi r1, r1, 1        ; compare ...
  bnei r1, 0, loop      ; ... fused branch
  halt
