// Command pipette-dis disassembles the benchmark kernels (or a textual .s
// file) to show exactly what runs on the simulated core — queue bindings,
// handler PCs, and the instruction stream.
//
// Usage:
//
//	pipette-dis -app bfs -variant pipette     # all stage programs of a kernel
//	pipette-dis -file kernel.s                # assemble + dump a .s file
//	pipette-dis -app bfs -uops                # pre-decoded micro-op stream
//
// -uops dumps the pre-decoded micro-op stream the core's frontend actually
// renames from (internal/isa.Predecode): basic blocks, per-op operand
// metadata, and fusion-pair annotations.
package main

import (
	"flag"
	"fmt"
	"os"

	"pipette/internal/bench"
	"pipette/internal/graph"
	"pipette/internal/isa"
	"pipette/internal/sim"
	"pipette/internal/sparse"
)

func main() {
	app := flag.String("app", "", "bfs | cc | prd | radii | spmm | silo")
	variant := flag.String("variant", "pipette", "serial | data-parallel | pipette | pipette-nora")
	file := flag.String("file", "", "assemble and dump a textual .s program")
	uops := flag.Bool("uops", false, "dump the pre-decoded micro-op stream (blocks, operands, fusion) instead of instructions")
	flag.Parse()

	dump := func(p *isa.Program) string {
		if *uops {
			return isa.Predecode(p).Disassemble()
		}
		return p.Disassemble()
	}

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p, err := isa.ParseAsm(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(dump(p))
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "need -app or -file")
		os.Exit(2)
	}

	// Build the workload into a throwaway system with a program-capturing
	// hook, then dump every loaded program.
	b, cores, err := pick(*app, *variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	s := sim.New(cfg)
	var progs []*isa.Program
	for _, c := range s.Cores {
		c.LoadHook = func(tid int, p *isa.Program) { progs = append(progs, p) }
	}
	b(s)
	for _, p := range progs {
		fmt.Print(dump(p))
		fmt.Println()
	}
}

func pick(app, variant string) (bench.Builder, int, error) {
	cores := 1
	if variant == bench.VStreaming {
		cores = 4
	}
	g := graph.Road(16, 16, 1)
	m := sparse.Random("dis", 20, 3, 1)
	sel := func(serial, dp, pip, nora bench.Builder) (bench.Builder, int, error) {
		switch variant {
		case bench.VSerial:
			return serial, cores, nil
		case bench.VDataParallel:
			return dp, cores, nil
		case bench.VPipette:
			return pip, cores, nil
		case bench.VPipetteNoRA:
			return nora, cores, nil
		}
		return nil, 0, fmt.Errorf("variant %q not supported here", variant)
	}
	switch app {
	case "bfs":
		return sel(bench.BFSSerial(g, 0), bench.BFSDataParallel(g, 0, 4),
			bench.BFSPipette(g, 0, 4, true), bench.BFSPipette(g, 0, 4, false))
	case "cc":
		return sel(bench.CCSerial(g), bench.CCDataParallel(g, 4),
			bench.CCPipette(g, true), bench.CCPipette(g, false))
	case "prd":
		return sel(bench.PRDSerial(g, 2), bench.PRDDataParallel(g, 2, 4),
			bench.PRDPipette(g, 2, true), bench.PRDPipette(g, 2, false))
	case "radii":
		return sel(bench.RadiiSerial(g), bench.RadiiDataParallel(g, 4),
			bench.RadiiPipette(g, true), bench.RadiiPipette(g, false))
	case "spmm":
		return sel(bench.SpMMSerial(m, m), bench.SpMMDataParallel(m, m, 4),
			bench.SpMMPipette(m, m, true), bench.SpMMPipette(m, m, false))
	case "silo":
		return sel(bench.SiloSerial(100, 20, 99), bench.SiloDataParallel(100, 20, 4, 99),
			bench.SiloPipette(100, 20, true, 99), bench.SiloPipette(100, 20, false, 99))
	}
	return nil, 0, fmt.Errorf("unknown app %q", app)
}
